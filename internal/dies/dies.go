// Package dies implements the many-core die-size projection of Table
// III: given the per-core area overhead (CAO) of an error-resilient
// implementation from the Table II synthesis, the projected die area of
// an n-core processor is
//
//	DA = n × CA × CAO + DA_orig
//
// where CA is the original per-core area and DA_orig the original die
// area. The package ships the three processors the paper projects onto
// (Intel Polaris, Tilera Tile64, NVIDIA GeForce 8800).
package dies

import "fmt"

// ManyCore describes an existing many-core processor.
type ManyCore struct {
	Name        string
	Vendor      string
	TechNode    string
	Cores       int
	CoreAreaMM2 float64 // per-core area, mm²
	DieAreaMM2  float64 // original die area, mm²
}

// Validate checks the datasheet entries.
func (m *ManyCore) Validate() error {
	if m.Cores < 1 || m.CoreAreaMM2 <= 0 || m.DieAreaMM2 <= 0 {
		return fmt.Errorf("dies: invalid processor %q", m.Name)
	}
	if float64(m.Cores)*m.CoreAreaMM2 > m.DieAreaMM2 {
		return fmt.Errorf("dies: %q cores exceed the die", m.Name)
	}
	return nil
}

// Catalog returns the paper's Table III processors.
func Catalog() []ManyCore {
	return []ManyCore{
		{Name: "Polaris", Vendor: "Intel", TechNode: "65nm", Cores: 80, CoreAreaMM2: 2.5, DieAreaMM2: 275},
		{Name: "Tile64", Vendor: "Tilera", TechNode: "90nm", Cores: 64, CoreAreaMM2: 3.6, DieAreaMM2: 330},
		{Name: "GeForce", Vendor: "NVIDIA", TechNode: "90nm", Cores: 128, CoreAreaMM2: 3.0, DieAreaMM2: 470},
	}
}

// ByName returns a catalog entry.
func ByName(name string) (ManyCore, bool) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, true
		}
	}
	return ManyCore{}, false
}

// Project returns the projected die area (mm²) under an error-resilient
// implementation with per-core area overhead cao.
func (m ManyCore) Project(cao float64) float64 {
	return float64(m.Cores)*m.CoreAreaMM2*cao + m.DieAreaMM2
}

// Projection is one row of Table III.
type Projection struct {
	Processor  ManyCore
	ReunionMM2 float64
	UnSyncMM2  float64
}

// DifferenceMM2 is the last row of Table III: the die-area saved by
// choosing UnSync over Reunion.
func (p Projection) DifferenceMM2() float64 { return p.ReunionMM2 - p.UnSyncMM2 }

// TableIII projects every catalog processor under the two CAOs.
func TableIII(caoReunion, caoUnSync float64) []Projection {
	out := make([]Projection, 0, len(Catalog()))
	for _, m := range Catalog() {
		out = append(out, Projection{
			Processor:  m,
			ReunionMM2: m.Project(caoReunion),
			UnSyncMM2:  m.Project(caoUnSync),
		})
	}
	return out
}

// PaperCAOReunion and PaperCAOUnSync are the per-core area overheads the
// paper extracts from Table II and uses for Table III.
const (
	PaperCAOReunion = 0.2077
	PaperCAOUnSync  = 0.0745
)
