// Package asm implements a small two-pass assembler for the simulator's
// MIPS-like ISA (internal/isa). It exists so that examples and fault
// injection tests can run real programs on the functional emulator and
// capture execution-derived traces for the timing model.
//
// Syntax summary:
//
//	.text                 ; switch to the text section (default)
//	.data                 ; switch to the data section
//	loop:                 ; label (text: instruction address, data: byte address)
//	add r1, r2, r3        ; register ops
//	addi r1, r2, -5       ; immediates: decimal or 0x hex
//	lw r4, 8(r29)         ; loads/stores: offset(base)
//	beq r1, r2, loop      ; branch targets: label or numeric byte offset
//	j end                 ; jump targets: label or absolute byte address
//	li r1, 100            ; pseudo: addi r1, r0, 100
//	mv r1, r2             ; pseudo: add r1, r2, r0
//	la r1, buf            ; pseudo: addi r1, r0, <address of buf>
//	.word 7               ; 8-byte little-endian datum
//	.word32 7             ; 4-byte little-endian datum
//	.space 64             ; zero-filled bytes
//	; comment  or  # comment
//
// Operands are type-checked against the opcode's operand metadata.
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"github.com/cmlasu/unsync/internal/isa"
)

// DataBase is the address at which the data section is loaded.
const DataBase = 0x10000

// Program is the output of the assembler.
type Program struct {
	Insts    []isa.Inst        // text section; instruction i is at address 4*i
	Data     []byte            // initial data section contents
	DataBase uint64            // load address of Data
	Labels   map[string]uint64 // label -> address (text or data)
}

// TextBytes returns the size of the text section in bytes.
func (p *Program) TextBytes() int { return 4 * len(p.Insts) }

// Error is a position-annotated assembly error.
type Error struct {
	Line int
	Msg  string
}

// Error formats the position-annotated message.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type section int

const (
	secText section = iota
	secData
)

// fixup records a label reference to resolve in pass two.
type fixup struct {
	instIdx int
	label   string
	line    int
	kind    fixKind
}

type fixKind int

const (
	fixBranch fixKind = iota // PC-relative byte offset
	fixAbs                   // absolute byte address (jumps, la)
)

// Assemble assembles source into a Program.
func Assemble(src string) (*Program, error) {
	p := &Program{DataBase: DataBase, Labels: make(map[string]uint64)}
	var fixups []fixup
	sec := secText

	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Leading label(s).
		for {
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(text[:idx])
			if !isIdent(name) {
				break
			}
			if _, dup := p.Labels[name]; dup {
				return nil, errf(line, "duplicate label %q", name)
			}
			switch sec {
			case secText:
				p.Labels[name] = uint64(4 * len(p.Insts))
			case secData:
				p.Labels[name] = p.DataBase + uint64(len(p.Data))
			}
			text = strings.TrimSpace(text[idx+1:])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			var err error
			sec, err = p.directive(sec, text, line)
			if err != nil {
				return nil, err
			}
			continue
		}
		if sec != secText {
			return nil, errf(line, "instruction %q outside .text", text)
		}
		if err := p.instruction(text, line, &fixups); err != nil {
			return nil, err
		}
	}

	for _, f := range fixups {
		addr, ok := p.Labels[f.label]
		if !ok {
			return nil, errf(f.line, "undefined label %q", f.label)
		}
		switch f.kind {
		case fixBranch:
			pc := uint64(4 * f.instIdx)
			p.Insts[f.instIdx].Imm = int64(addr) - int64(pc)
		case fixAbs:
			p.Insts[f.instIdx].Imm = int64(addr)
		}
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for tests and examples.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		//unsync:allow-panic Must-variant over static program text; a bad built-in program is a programming error
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *Program) directive(sec section, text string, line int) (section, error) {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".text":
		return secText, nil
	case ".data":
		return secData, nil
	case ".word", ".word32":
		if sec != secData {
			return sec, errf(line, "%s outside .data", fields[0])
		}
		if len(fields) != 2 {
			return sec, errf(line, "%s needs one value", fields[0])
		}
		v, err := parseImm(fields[1])
		if err != nil {
			return sec, errf(line, "bad value %q: %v", fields[1], err)
		}
		if fields[0] == ".word" {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			p.Data = append(p.Data, b[:]...)
		} else {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v))
			p.Data = append(p.Data, b[:]...)
		}
		return sec, nil
	case ".space":
		if sec != secData {
			return sec, errf(line, ".space outside .data")
		}
		if len(fields) != 2 {
			return sec, errf(line, ".space needs a size")
		}
		n, err := parseImm(fields[1])
		if err != nil || n < 0 || n > 1<<26 {
			return sec, errf(line, "bad .space size %q", fields[1])
		}
		p.Data = append(p.Data, make([]byte, n)...)
		return sec, nil
	default:
		return sec, errf(line, "unknown directive %q", fields[0])
	}
}

func (p *Program) instruction(text string, line int, fixups *[]fixup) error {
	mnem, rest, _ := strings.Cut(text, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	ops := splitOperands(rest)

	// Pseudo-instructions.
	switch mnem {
	case "li":
		if len(ops) != 2 {
			return errf(line, "li needs 2 operands")
		}
		rd, err := parseReg(ops[0], isa.RegInt)
		if err != nil {
			return errf(line, "%v", err)
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return errf(line, "bad immediate %q", ops[1])
		}
		p.Insts = append(p.Insts, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: imm})
		return nil
	case "mv":
		if len(ops) != 2 {
			return errf(line, "mv needs 2 operands")
		}
		rd, err1 := parseReg(ops[0], isa.RegInt)
		rs, err2 := parseReg(ops[1], isa.RegInt)
		if err1 != nil || err2 != nil {
			return errf(line, "bad register in mv")
		}
		p.Insts = append(p.Insts, isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs, Rs2: 0})
		return nil
	case "la":
		if len(ops) != 2 {
			return errf(line, "la needs 2 operands")
		}
		rd, err := parseReg(ops[0], isa.RegInt)
		if err != nil {
			return errf(line, "%v", err)
		}
		p.Insts = append(p.Insts, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0})
		*fixups = append(*fixups, fixup{instIdx: len(p.Insts) - 1, label: ops[1], line: line, kind: fixAbs})
		return nil
	}

	op, ok := isa.OpcodeByName(mnem)
	if !ok {
		return errf(line, "unknown mnemonic %q", mnem)
	}
	inst := isa.Inst{Op: op}

	consume := func(i int) (string, error) {
		if i >= len(ops) {
			return "", errf(line, "%s: missing operand %d", mnem, i+1)
		}
		return ops[i], nil
	}

	switch {
	case op == isa.NOP || op == isa.SYSCALL || op == isa.FENCE || op == isa.HALT:
		if len(ops) != 0 {
			return errf(line, "%s takes no operands", mnem)
		}
	case op == isa.AMOADD: // amoadd rd, rs2, (rs1)
		if len(ops) != 3 {
			return errf(line, "amoadd needs 3 operands")
		}
		var err error
		if inst.Rd, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Rs2, err = parseReg(ops[1], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		base := strings.TrimSuffix(strings.TrimPrefix(ops[2], "("), ")")
		if inst.Rs1, err = parseReg(base, isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
	case op.IsLoad(): // ld rd, off(base)
		o0, err := consume(0)
		if err != nil {
			return err
		}
		if inst.Rd, err = parseReg(o0, op.RdFile()); err != nil {
			return errf(line, "%v", err)
		}
		o1, err := consume(1)
		if err != nil {
			return err
		}
		if inst.Imm, inst.Rs1, err = parseMemOperand(o1); err != nil {
			return errf(line, "%v", err)
		}
	case op.IsStore(): // st rs2, off(base)
		o0, err := consume(0)
		if err != nil {
			return err
		}
		if inst.Rs2, err = parseReg(o0, op.Rs2File()); err != nil {
			return errf(line, "%v", err)
		}
		o1, err := consume(1)
		if err != nil {
			return err
		}
		if inst.Imm, inst.Rs1, err = parseMemOperand(o1); err != nil {
			return errf(line, "%v", err)
		}
	case op.Class() == isa.ClassBranch: // beq rs1, rs2, target
		if len(ops) != 3 {
			return errf(line, "%s needs 3 operands", mnem)
		}
		var err error
		if inst.Rs1, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Rs2, err = parseReg(ops[1], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if imm, err := parseImm(ops[2]); err == nil {
			inst.Imm = imm
		} else {
			*fixups = append(*fixups, fixup{instIdx: len(p.Insts), label: ops[2], line: line, kind: fixBranch})
		}
	case op == isa.J: // j target
		if len(ops) != 1 {
			return errf(line, "j needs 1 operand")
		}
		if imm, err := parseImm(ops[0]); err == nil {
			inst.Imm = imm
		} else {
			*fixups = append(*fixups, fixup{instIdx: len(p.Insts), label: ops[0], line: line, kind: fixAbs})
		}
	case op == isa.JAL: // jal rd, target
		if len(ops) != 2 {
			return errf(line, "jal needs 2 operands")
		}
		var err error
		if inst.Rd, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if imm, err := parseImm(ops[1]); err == nil {
			inst.Imm = imm
		} else {
			*fixups = append(*fixups, fixup{instIdx: len(p.Insts), label: ops[1], line: line, kind: fixAbs})
		}
	case op == isa.JR:
		if len(ops) != 1 {
			return errf(line, "jr needs 1 operand")
		}
		var err error
		if inst.Rs1, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
	case op == isa.JALR:
		if len(ops) != 2 {
			return errf(line, "jalr needs 2 operands")
		}
		var err error
		if inst.Rd, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Rs1, err = parseReg(ops[1], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
	case op == isa.LUI:
		if len(ops) != 2 {
			return errf(line, "lui needs 2 operands")
		}
		var err error
		if inst.Rd, err = parseReg(ops[0], isa.RegInt); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Imm, err = parseImm(ops[1]); err != nil {
			return errf(line, "bad immediate %q", ops[1])
		}
	case op.HasImm(): // op rd, rs1, imm
		if len(ops) != 3 {
			return errf(line, "%s needs 3 operands", mnem)
		}
		var err error
		if inst.Rd, err = parseReg(ops[0], op.RdFile()); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Rs1, err = parseReg(ops[1], op.Rs1File()); err != nil {
			return errf(line, "%v", err)
		}
		if inst.Imm, err = parseImm(ops[2]); err != nil {
			return errf(line, "bad immediate %q", ops[2])
		}
	default: // register forms, 1..3 operands per metadata
		want := 0
		if op.RdFile() != isa.RegNone {
			want++
		}
		if op.Rs1File() != isa.RegNone {
			want++
		}
		if op.Rs2File() != isa.RegNone {
			want++
		}
		if len(ops) != want {
			return errf(line, "%s needs %d operands, got %d", mnem, want, len(ops))
		}
		i := 0
		var err error
		if op.RdFile() != isa.RegNone {
			if inst.Rd, err = parseReg(ops[i], op.RdFile()); err != nil {
				return errf(line, "%v", err)
			}
			i++
		}
		if op.Rs1File() != isa.RegNone {
			if inst.Rs1, err = parseReg(ops[i], op.Rs1File()); err != nil {
				return errf(line, "%v", err)
			}
			i++
		}
		if op.Rs2File() != isa.RegNone {
			if inst.Rs2, err = parseReg(ops[i], op.Rs2File()); err != nil {
				return errf(line, "%v", err)
			}
		}
	}

	p.Insts = append(p.Insts, inst)
	return nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func parseReg(s string, file isa.RegFile) (uint8, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	var prefix byte
	switch file {
	case isa.RegInt:
		prefix = 'r'
	case isa.RegFP:
		prefix = 'f'
	default:
		return 0, fmt.Errorf("operand %q not allowed here", s)
	}
	if s[0] != prefix {
		return 0, fmt.Errorf("register %q: want %c-file register", s, prefix)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// parseMemOperand parses "off(base)" or "(base)".
func parseMemOperand(s string) (int64, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var off int64
	if open > 0 {
		var err error
		off, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
	}
	base, err := parseReg(s[open+1:len(s)-1], isa.RegInt)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}
