package asm

import (
	"errors"
	"strings"
	"testing"

	"github.com/cmlasu/unsync/internal/isa"
)

func TestAssembleBasicOps(t *testing.T) {
	p := MustAssemble(`
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 16(r29)
		sw r6, -16(r29)
		fadd f1, f2, f3
		fld f4, 0(r1)
		fsd f4, 8(r1)
		nop
		halt
	`)
	want := []isa.Inst{
		{Op: isa.ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.ADDI, Rd: 4, Rs1: 5, Imm: -7},
		{Op: isa.LW, Rd: 6, Rs1: 29, Imm: 16},
		{Op: isa.SW, Rs2: 6, Rs1: 29, Imm: -16},
		{Op: isa.FADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.FLD, Rd: 4, Rs1: 1, Imm: 0},
		{Op: isa.FSD, Rs2: 4, Rs1: 1, Imm: 8},
		{Op: isa.NOP},
		{Op: isa.HALT},
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p.Insts), len(want))
	}
	for i := range want {
		if p.Insts[i] != want[i] {
			t.Errorf("inst %d: got %v, want %v", i, p.Insts[i], want[i])
		}
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := MustAssemble(`
	start:
		li r1, 0
	loop:
		addi r1, r1, 1
		blt r1, r2, loop
		beq r1, r2, done
		j loop
	done:
		halt
	`)
	// loop is instruction 1 => address 4.
	if p.Labels["loop"] != 4 {
		t.Errorf("loop label = %d, want 4", p.Labels["loop"])
	}
	// blt at address 8 targets 4 => offset -4.
	if p.Insts[2].Imm != -4 {
		t.Errorf("blt offset = %d, want -4", p.Insts[2].Imm)
	}
	// beq at address 12 targets done (20) => offset 8.
	if p.Insts[3].Imm != 8 {
		t.Errorf("beq offset = %d, want 8", p.Insts[3].Imm)
	}
	// j targets absolute address 4.
	if p.Insts[4].Imm != 4 {
		t.Errorf("j target = %d, want 4", p.Insts[4].Imm)
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	p := MustAssemble(`
		li r1, 0x10
		mv r2, r1
		la r3, buf
	.data
	buf:
		.word 99
	`)
	if p.Insts[0] != (isa.Inst{Op: isa.ADDI, Rd: 1, Imm: 16}) {
		t.Errorf("li expanded to %v", p.Insts[0])
	}
	if p.Insts[1] != (isa.Inst{Op: isa.ADD, Rd: 2, Rs1: 1, Rs2: 0}) {
		t.Errorf("mv expanded to %v", p.Insts[1])
	}
	if p.Insts[2].Op != isa.ADDI || p.Insts[2].Imm != DataBase {
		t.Errorf("la expanded to %v, want addi ..., %d", p.Insts[2], DataBase)
	}
	if p.Labels["buf"] != DataBase {
		t.Errorf("buf label = %#x", p.Labels["buf"])
	}
	if len(p.Data) != 8 || p.Data[0] != 99 {
		t.Errorf("data = %v", p.Data)
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	p := MustAssemble(`
	.data
	a: .word 0x0102030405060708
	b: .word32 0x11223344
	c: .space 16
	d: .word 1
	`)
	if len(p.Data) != 8+4+16+8 {
		t.Fatalf("data length = %d", len(p.Data))
	}
	if p.Data[0] != 0x08 || p.Data[7] != 0x01 {
		t.Error(".word not little-endian")
	}
	if p.Data[8] != 0x44 || p.Data[11] != 0x11 {
		t.Error(".word32 not little-endian")
	}
	if p.Labels["c"] != DataBase+12 || p.Labels["d"] != DataBase+28 {
		t.Errorf("labels: c=%d d=%d", p.Labels["c"], p.Labels["d"])
	}
}

func TestAssembleComments(t *testing.T) {
	p := MustAssemble(`
		; full-line comment
		# another comment
		add r1, r1, r1  ; trailing
		halt            # trailing
	`)
	if len(p.Insts) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestAssembleAmoAndSerializing(t *testing.T) {
	p := MustAssemble(`
		amoadd r1, r2, (r3)
		fence
		syscall
	`)
	if p.Insts[0] != (isa.Inst{Op: isa.AMOADD, Rd: 1, Rs2: 2, Rs1: 3}) {
		t.Errorf("amoadd = %v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.FENCE || p.Insts[2].Op != isa.SYSCALL {
		t.Error("fence/syscall mis-assembled")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"add r1, r2", "needs 3 operands"},
		{"add r1, r2, f3", "register"},
		{"addi r1, r2, xyz", "bad immediate"},
		{"lw r1, r2", "bad memory operand"},
		{"beq r1, r2, nowhere", "undefined label"},
		{"x: halt\nx: halt", "duplicate label"},
		{".data\n.word", "needs one value"},
		{".bogus", "unknown directive"},
		{".data\nadd r1, r1, r1", "outside .text"},
		{".word 4", "outside .data"},
		{"add r1, r2, r99", "bad register"},
		{"jr", "needs 1 operand"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q): expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q): error %q does not contain %q", c.src, err, c.wantSub)
		}
		var ae *Error
		if !errors.As(err, &ae) {
			t.Errorf("Assemble(%q): error is not *asm.Error", c.src)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 16(r29)
		sw r6, -16(r29)
		beq r1, r2, 8
		j 64
		jal r31, 0
		jr r31
		fadd f1, f2, f3
		fence
		halt
	`
	p := MustAssemble(src)
	var b strings.Builder
	for _, in := range p.Insts {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	p2, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v", err)
	}
	for i := range p.Insts {
		if p.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, p.Insts[i], p2.Insts[i])
		}
	}
}

func TestTextBytes(t *testing.T) {
	p := MustAssemble("nop\nnop\nhalt")
	if p.TextBytes() != 12 {
		t.Errorf("TextBytes = %d, want 12", p.TextBytes())
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p := MustAssemble("entry: halt")
	if p.Labels["entry"] != 0 || p.Insts[0].Op != isa.HALT {
		t.Error("label-and-instruction line mis-assembled")
	}
}

func TestAssembleMoreErrorPaths(t *testing.T) {
	cases := []string{
		"li r1",               // wrong arity
		"li r1, bad",          // bad immediate
		"li f1, 1",            // wrong file
		"mv r1",               // wrong arity
		"mv r1, f2",           // wrong file
		"la r1",               // wrong arity
		"la f1, x",            // wrong file
		"lw r1",               // missing operand
		"lw f1, 0(r1)",        // wrong dest file for lw
		"sw r1",               // missing operand
		"sw r1, 0(f1)",        // fp base register
		"amoadd r1, r2",       // wrong arity
		"amoadd f1, r2, (r3)", // wrong file
		"amoadd r1, f2, (r3)", // wrong file
		"amoadd r1, r2, (f3)", // wrong base
		"beq r1, r2",          // wrong arity
		"beq f1, r2, 0",       // wrong file
		"beq r1, f2, 0",       // wrong file
		"j",                   // wrong arity
		"jal r31",             // wrong arity
		"jal f1, 0",           // wrong file
		"jalr r1",             // wrong arity
		"jalr f1, r2",         // wrong file
		"jalr r1, f2",         // wrong file
		"jr f1",               // wrong file
		"lui r1",              // wrong arity
		"lui r1, zz",          // bad imm
		"addi r1, r2",         // wrong arity
		"addi f1, r2, 1",      // wrong file
		"addi r1, f2, 1",      // wrong file
		"add r1, r2, r3, r4",  // too many operands
		"fadd f1, f2",         // wrong arity
		"fence now",           // operands on a no-operand op
		"lw r1, 5[r2]",        // malformed memory operand
		"lw r1, x(r2)",        // bad offset
		".data\n.space",       // missing size
		".data\n.space -1",    // negative size
		".data\n.word zz",     // bad value
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted invalid input", src)
		}
	}
}

func TestAssembleLabelEdgeCases(t *testing.T) {
	// A colon inside a non-identifier prefix is not a label.
	if _, err := Assemble("9bad: halt"); err == nil {
		t.Error("numeric-leading label accepted as instruction")
	}
	// Multiple labels on one line.
	p := MustAssemble("a: b: halt")
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Error("stacked labels mis-assembled")
	}
	// Memory operand without offset.
	p = MustAssemble("lw r1, (r2)")
	if p.Insts[0].Imm != 0 {
		t.Error("(reg) operand should have zero offset")
	}
}
