// Package ring provides a growable FIFO ring buffer used on the
// simulator's per-cycle hot paths (fetch queues, store lists,
// Communication Buffers, fingerprint windows). Unlike the
// append/reslice-from-front idiom it replaces, a Buffer reuses its
// backing array forever: pushing and popping at steady state performs
// no allocation, and the buffer only grows (amortized doubling) when
// the population genuinely exceeds the preallocated capacity.
package ring

// Buffer is a FIFO queue over a circular backing array. The zero value
// is usable but starts with zero capacity; prefer New to preallocate
// the structural bound of the queue so steady-state operation never
// allocates.
type Buffer[T any] struct {
	buf  []T
	head int
	n    int
}

// New returns a buffer preallocated to the given capacity (minimum 1).
func New[T any](capacity int) *Buffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (b *Buffer[T]) Len() int { return b.n }

// Cap returns the current backing capacity.
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// Empty reports whether the buffer holds no elements.
func (b *Buffer[T]) Empty() bool { return b.n == 0 }

// PushBack appends v at the tail, growing the backing array if full.
func (b *Buffer[T]) PushBack(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)%len(b.buf)] = v
	b.n++
}

// PopFront removes and returns the head element.
func (b *Buffer[T]) PopFront() T {
	if b.n == 0 {
		//unsync:allow-panic invariant: callers check Len/Empty before popping; popping an empty queue is a programming error
		panic("ring: PopFront on empty buffer")
	}
	v := b.buf[b.head]
	var zero T
	b.buf[b.head] = zero
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return v
}

// Front returns a pointer to the head element (index 0).
func (b *Buffer[T]) Front() *T { return b.At(0) }

// At returns a pointer to the i-th element from the head. The pointer
// is invalidated by the next PushBack (the buffer may grow).
func (b *Buffer[T]) At(i int) *T {
	if i < 0 || i >= b.n {
		//unsync:allow-panic invariant bounds check: callers iterate i in [0, Len)
		panic("ring: index out of range")
	}
	return &b.buf[(b.head+i)%len(b.buf)]
}

// Clear empties the buffer, zeroing the stored elements so pointer
// fields do not pin garbage, while keeping the backing array.
func (b *Buffer[T]) Clear() {
	var zero T
	for i := 0; i < b.n; i++ {
		b.buf[(b.head+i)%len(b.buf)] = zero
	}
	b.head, b.n = 0, 0
}

// CopyFrom replaces the contents of b with a copy of o's contents,
// growing b's backing array only if o holds more elements than b can.
func (b *Buffer[T]) CopyFrom(o *Buffer[T]) {
	b.Clear()
	for len(b.buf) < o.n {
		b.grow()
	}
	for i := 0; i < o.n; i++ {
		b.buf[i] = o.buf[(o.head+i)%len(o.buf)]
	}
	b.n = o.n
}

func (b *Buffer[T]) grow() {
	next := 2 * len(b.buf)
	if next == 0 {
		next = 4
	}
	nb := make([]T, next)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)%len(b.buf)]
	}
	b.buf, b.head = nb, 0
}
