package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	b := New[int](4)
	for i := 0; i < 10; i++ {
		b.PushBack(i)
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	for i := 0; i < 10; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront #%d = %d", i, got)
		}
	}
	if !b.Empty() {
		t.Fatal("buffer not empty after draining")
	}
}

func TestWrapAroundReuse(t *testing.T) {
	b := New[int](4)
	// Push/pop through the boundary many times; capacity must not grow.
	for i := 0; i < 100; i++ {
		b.PushBack(i)
		b.PushBack(i + 1000)
		if got := b.PopFront(); got != i {
			t.Fatalf("round %d: PopFront = %d", i, got)
		}
		if got := b.PopFront(); got != i+1000 {
			t.Fatalf("round %d: second PopFront = %d", i, got)
		}
	}
	if b.Cap() != 4 {
		t.Fatalf("Cap grew to %d on bounded occupancy", b.Cap())
	}
}

func TestAtAndFront(t *testing.T) {
	b := New[int](2)
	b.PushBack(7)
	b.PushBack(8)
	b.PushBack(9) // forces growth with head offset
	if *b.Front() != 7 {
		t.Fatalf("Front = %d", *b.Front())
	}
	for i, want := range []int{7, 8, 9} {
		if got := *b.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
	*b.At(1) = 80
	if got := *b.At(1); got != 80 {
		t.Fatalf("At(1) after write = %d", got)
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	b := New[string](3)
	b.PushBack("a")
	b.PushBack("b")
	b.Clear()
	if b.Len() != 0 || b.Cap() != 3 {
		t.Fatalf("after Clear: Len=%d Cap=%d", b.Len(), b.Cap())
	}
	b.PushBack("c")
	if *b.Front() != "c" {
		t.Fatalf("Front after Clear = %q", *b.Front())
	}
}

func TestCopyFrom(t *testing.T) {
	src := New[int](4)
	for i := 0; i < 6; i++ {
		src.PushBack(i)
	}
	src.PopFront()
	src.PopFront() // src now holds 2..5 with a wrapped head

	dst := New[int](1)
	dst.PushBack(99)
	dst.CopyFrom(src)
	if dst.Len() != 4 {
		t.Fatalf("dst.Len = %d, want 4", dst.Len())
	}
	for i, want := range []int{2, 3, 4, 5} {
		if got := *dst.At(i); got != want {
			t.Fatalf("dst.At(%d) = %d, want %d", i, got, want)
		}
	}
	// Copies are independent.
	src.PopFront()
	if dst.Len() != 4 {
		t.Fatal("dst changed when src popped")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopFront on empty buffer did not panic")
		}
	}()
	New[int](1).PopFront()
}
