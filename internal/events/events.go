// Package events defines the simulator's named hardware-counter
// taxonomy: every performance event the cores, memory hierarchy and
// redundancy schemes count, each under a stable string name with a
// unit and a topdown bucket. The names follow the PerfSpect-style
// dotted convention ("L1D.REPLACEMENT", "TOPDOWN.SLOTS") so BENCH.json
// deltas and the /metrics endpoint stay diffable across commits.
//
// The package is a leaf: producers (internal/pipeline, internal/core,
// internal/reunion, internal/tmr, internal/mem via internal/cmp)
// return Counts keyed by these names, and consumers (unsync-bench,
// unsync-serve, CI) never need to know which subsystem incremented
// what.
//
// The topdown decomposition partitions the commit-slot capacity of the
// measurement window (Width × Cycles slots) into four exhaustive,
// mutually exclusive buckets, mirroring the classic frontend/backend/
// retiring/bad-speculation split. Here the fourth bucket is "bad gate":
// slots lost to the redundancy scheme's commit gating and recovery
// freezes, which play the role speculation waste plays on real
// hardware. TopdownOf computes the fractions; the accounting-identity
// test in internal/cmp pins that they sum to one.
package events

import "sort"

// Unit is the measurement unit of an event.
type Unit string

// Units used by the registry.
const (
	UnitCycles Unit = "cycles"
	UnitInsts  Unit = "insts"
	UnitSlots  Unit = "slots"
	UnitCount  Unit = "count"
	UnitLines  Unit = "lines"
	UnitTrials Unit = "trials"
)

// Bucket is the topdown bucket an event feeds, if any.
type Bucket string

// Topdown buckets. BucketNone marks events outside the slot
// decomposition (raw counters, memory events, campaign tallies).
const (
	BucketNone     Bucket = ""
	BucketRetiring Bucket = "retiring"
	BucketFrontend Bucket = "frontend"
	BucketBackend  Bucket = "backend"
	BucketBadGate  Bucket = "bad-gate"
)

// Event describes one named counter.
type Event struct {
	Name   string
	Unit   Unit
	Bucket Bucket
	Desc   string
}

// Event names. Producers key their Counts with these constants; the
// strings are a stable external interface (BENCH.json, /metrics) and
// must not be renamed without bumping the bench schema.
const (
	// Core pipeline events (internal/pipeline).
	Cycles           = "CYCLES"
	InstRetired      = "INST.RETIRED"
	InstSerializing  = "INST.SERIALIZING"
	MemInstLoads     = "MEM_INST.LOADS"
	MemInstStores    = "MEM_INST.STORES"
	BranchFetched    = "BRANCH.FETCHED"
	BranchMispredict = "BRANCH.MISPREDICT"

	// Commit-slot-0 stall causes; with COMMIT.CYCLES and FROZEN.CYCLES
	// they partition CYCLES exactly (the accounting identity).
	CommitCycles     = "COMMIT.CYCLES"
	CommitStallEmpty = "COMMIT.STALL_EMPTY"
	CommitStallExec  = "COMMIT.STALL_EXEC"
	CommitStallGate  = "COMMIT.STALL_GATE"
	FrozenCycles     = "FROZEN.CYCLES"

	// Dispatch and fetch stalls.
	DispatchStallROBFull = "DISPATCH.STALL_ROB_FULL"
	DispatchStallIQFull  = "DISPATCH.STALL_IQ_FULL"
	DispatchStallLSQFull = "DISPATCH.STALL_LSQ_FULL"
	FetchStall           = "FETCH.STALL"

	// Topdown slot buckets (Width × CYCLES total slots).
	TopdownSlots         = "TOPDOWN.SLOTS"
	TopdownRetiringSlots = "TOPDOWN.RETIRING_SLOTS"
	TopdownFrontendSlots = "TOPDOWN.FRONTEND_SLOTS"
	TopdownBackendSlots  = "TOPDOWN.BACKEND_SLOTS"
	TopdownBadGateSlots  = "TOPDOWN.BAD_GATE_SLOTS"

	// Memory hierarchy events (internal/mem, collected per owning core).
	L1DMiss        = "L1D.MISS"
	L1DReplacement = "L1D.REPLACEMENT"
	L1DMSHRStall   = "L1D.MSHR_STALL"
	L1IMiss        = "L1I.MISS"
	L1IReplacement = "L1I.REPLACEMENT"
	L2Miss         = "L2.MISS"
	L2Replacement  = "L2.REPLACEMENT"
	DTLBMiss       = "DTLB.MISS"
	ITLBMiss       = "ITLB.MISS"
	PrefetchIssued = "PREFETCH.ISSUED"

	// UnSync pair events (internal/core): Communication Buffer pressure
	// and EIH recovery costs.
	CBFullStall    = "CB.FULL_STALL"
	CBDrained      = "CB.DRAINED"
	CBDivergence   = "CB.DIVERGENCE"
	RecoveryCount  = "RECOVERY.COUNT"
	RecoveryCycles = "RECOVERY.CYCLES"

	// Reunion pair events (internal/reunion): CHECK Stage Buffer waits
	// and fingerprint traffic.
	CSBFullStall      = "CSB.FULL_STALL"
	CSBSerializeStall = "CSB.SERIALIZE_STALL"
	FPClosed          = "FP.CLOSED"
	FPMismatch        = "FP.MISMATCH"
	RollbackCount     = "ROLLBACK.COUNT"
	RollbackCycles    = "ROLLBACK.CYCLES"

	// TMR triple events (internal/tmr): majority voting and masking.
	TMRMasked    = "TMR.MASKED"
	ResyncCount  = "RESYNC.COUNT"
	ResyncCycles = "RESYNC.CYCLES"

	// Fault-injection campaign tallies (internal/campaign).
	CampaignTrials        = "CAMPAIGN.TRIALS"
	CampaignBenign        = "CAMPAIGN.BENIGN"
	CampaignRecovered     = "CAMPAIGN.RECOVERED"
	CampaignUnrecoverable = "CAMPAIGN.UNRECOVERABLE"
	CampaignSDC           = "CAMPAIGN.SDC"
	CampaignHang          = "CAMPAIGN.HANG"
)

// defined is the full registry, in reporting order (grouped by
// subsystem, the order Defined returns).
var defined = []Event{
	{Cycles, UnitCycles, BucketNone, "machine cycles in the measurement window"},
	{InstRetired, UnitInsts, BucketRetiring, "instructions retired by the commit stage"},
	{InstSerializing, UnitInsts, BucketNone, "serializing instructions committed (traps, barriers, atomics)"},
	{MemInstLoads, UnitInsts, BucketNone, "load instructions committed"},
	{MemInstStores, UnitInsts, BucketNone, "store instructions committed"},
	{BranchFetched, UnitCount, BucketNone, "conditional branches fetched"},
	{BranchMispredict, UnitCount, BucketNone, "branch direction mispredictions"},

	{CommitCycles, UnitCycles, BucketNone, "cycles in which slot 0 committed an instruction"},
	{CommitStallEmpty, UnitCycles, BucketFrontend, "slot-0 stalls: ROB empty (frontend-bound)"},
	{CommitStallExec, UnitCycles, BucketBackend, "slot-0 stalls: head not finished executing"},
	{CommitStallGate, UnitCycles, BucketBadGate, "slot-0 stalls: blocked by the redundancy scheme's commit gate"},
	{FrozenCycles, UnitCycles, BucketBadGate, "whole-core cycles frozen inside a recovery window"},

	{DispatchStallROBFull, UnitCycles, BucketNone, "dispatch stalls: reorder buffer full"},
	{DispatchStallIQFull, UnitCycles, BucketNone, "dispatch stalls: issue queue full"},
	{DispatchStallLSQFull, UnitCycles, BucketNone, "dispatch stalls: load/store queue full"},
	{FetchStall, UnitCycles, BucketNone, "cycles the frontend fetch was stalled"},

	{TopdownSlots, UnitSlots, BucketNone, "total commit slots (Width x CYCLES)"},
	{TopdownRetiringSlots, UnitSlots, BucketRetiring, "slots that retired an instruction"},
	{TopdownFrontendSlots, UnitSlots, BucketFrontend, "slots lost to an empty ROB"},
	{TopdownBackendSlots, UnitSlots, BucketBackend, "slots lost waiting on execution or partial-width commit"},
	{TopdownBadGateSlots, UnitSlots, BucketBadGate, "slots lost to scheme gating and recovery freezes"},

	{L1DMiss, UnitCount, BucketNone, "L1 data cache misses"},
	{L1DReplacement, UnitLines, BucketNone, "L1 data cache lines installed (fills)"},
	{L1DMSHRStall, UnitCount, BucketNone, "L1D misses delayed waiting for a free MSHR"},
	{L1IMiss, UnitCount, BucketNone, "L1 instruction cache misses"},
	{L1IReplacement, UnitLines, BucketNone, "L1 instruction cache lines installed (fills)"},
	{L2Miss, UnitCount, BucketNone, "shared L2 misses"},
	{L2Replacement, UnitLines, BucketNone, "shared L2 lines installed (fills)"},
	{DTLBMiss, UnitCount, BucketNone, "data TLB misses"},
	{ITLBMiss, UnitCount, BucketNone, "instruction TLB misses"},
	{PrefetchIssued, UnitCount, BucketNone, "next-line prefetches issued by the stream detector"},

	{CBFullStall, UnitCycles, BucketNone, "commit-block cycles due to a full Communication Buffer (summed over replicas)"},
	{CBDrained, UnitCount, BucketNone, "matched CB entries written once to the ECC L2"},
	{CBDivergence, UnitCount, BucketNone, "head-of-CB tag mismatches (escaped errors)"},
	{RecoveryCount, UnitCount, BucketNone, "EIH pair recoveries performed"},
	{RecoveryCycles, UnitCycles, BucketNone, "cycles spent in the stop-copy-resume recovery window"},

	{CSBFullStall, UnitCycles, BucketNone, "commit-block cycles due to a full CHECK Stage Buffer (summed over replicas)"},
	{CSBSerializeStall, UnitCycles, BucketNone, "commit-block cycles waiting on serializing fingerprint verification (summed over replicas)"},
	{FPClosed, UnitCount, BucketNone, "fingerprint windows closed by both cores"},
	{FPMismatch, UnitCount, BucketNone, "fingerprint comparison failures"},
	{RollbackCount, UnitCount, BucketNone, "pair rollbacks after a fingerprint mismatch"},
	{RollbackCycles, UnitCycles, BucketNone, "cycles spent in rollback re-execution windows"},

	{TMRMasked, UnitCount, BucketNone, "divergent minority CB heads outvoted and discarded"},
	{ResyncCount, UnitCount, BucketNone, "single-core resynchronizations performed"},
	{ResyncCycles, UnitCycles, BucketNone, "cycles struck cores spent frozen during resynchronization"},

	{CampaignTrials, UnitTrials, BucketNone, "fault-injection trials tallied"},
	{CampaignBenign, UnitTrials, BucketNone, "trials whose strike was architecturally masked"},
	{CampaignRecovered, UnitTrials, BucketNone, "trials detected and recovered by the scheme"},
	{CampaignUnrecoverable, UnitTrials, BucketNone, "trials detected but not recoverable"},
	{CampaignSDC, UnitTrials, BucketNone, "trials ending in silent data corruption"},
	{CampaignHang, UnitTrials, BucketNone, "trials that exceeded the hang budget"},
}

// byName indexes the registry for Lookup.
var byName = func() map[string]Event {
	m := make(map[string]Event, len(defined))
	for _, e := range defined {
		if _, dup := m[e.Name]; dup {
			panic("events: duplicate event name " + e.Name)
		}
		m[e.Name] = e
	}
	return m
}()

// Defined returns every registered event in reporting order. The
// returned slice is a copy.
func Defined() []Event {
	out := make([]Event, len(defined))
	copy(out, defined)
	return out
}

// Lookup returns the registered event for a name.
func Lookup(name string) (Event, bool) {
	e, ok := byName[name]
	return e, ok
}

// Counts maps event names to counter values. The zero value is not
// usable; make one with Counts{} or make(Counts).
type Counts map[string]uint64

// Add increments one counter.
func (c Counts) Add(name string, n uint64) { c[name] += n }

// Merge adds every counter of other into c. A nil other is a no-op.
func (c Counts) Merge(other Counts) {
	for _, name := range other.Names() {
		c[name] += other[name]
	}
}

// Names returns the event names present in c, sorted — the one
// sanctioned iteration order (deterministic output, maprange lint).
func (c Counts) Names() []string {
	out := make([]string, 0, len(c))
	for name := range c {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Delta returns cur − prev per event (union of keys) as signed counts,
// for scheme-vs-baseline comparison in BENCH.json.
func Delta(cur, prev Counts) map[string]int64 {
	out := make(map[string]int64, len(cur))
	for _, name := range cur.Names() {
		out[name] = int64(cur[name]) - int64(prev[name])
	}
	for _, name := range prev.Names() {
		if _, ok := out[name]; !ok {
			out[name] = -int64(prev[name])
		}
	}
	return out
}

// Topdown is the four-bucket slot decomposition of a measurement
// window. The fractions are of TOPDOWN.SLOTS and sum to one whenever
// the producer maintained the accounting identity.
type Topdown struct {
	Slots    uint64
	Retiring float64
	Frontend float64
	Backend  float64
	BadGate  float64
}

// TopdownOf derives the slot fractions from a Counts map. ok is false
// when the window has no slots (zero cycles).
func TopdownOf(c Counts) (Topdown, bool) {
	slots := c[TopdownSlots]
	if slots == 0 {
		return Topdown{}, false
	}
	frac := func(name string) float64 { return float64(c[name]) / float64(slots) }
	return Topdown{
		Slots:    slots,
		Retiring: frac(TopdownRetiringSlots),
		Frontend: frac(TopdownFrontendSlots),
		Backend:  frac(TopdownBackendSlots),
		BadGate:  frac(TopdownBadGateSlots),
	}, true
}
