package events

import (
	"math"
	"strings"
	"testing"
)

// TestRegistryWellFormed pins the taxonomy's structural invariants:
// unique uppercase dotted names, a unit on every event, and exactly one
// source event per topdown bucket plus the slot buckets themselves.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	buckets := map[Bucket]int{}
	for _, e := range Defined() {
		if e.Name == "" || e.Unit == "" || e.Desc == "" {
			t.Errorf("event %+v missing name, unit or description", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate event name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Name != strings.ToUpper(e.Name) {
			t.Errorf("event name %q not uppercase", e.Name)
		}
		if !strings.Contains(e.Name, ".") && e.Name != Cycles {
			t.Errorf("event name %q not dotted (SUBSYSTEM.EVENT); only the bare cycle counter is exempt", e.Name)
		}
		if e.Bucket != BucketNone {
			buckets[e.Bucket]++
		}
		got, ok := Lookup(e.Name)
		if !ok || got != e {
			t.Errorf("Lookup(%q) = %+v, %v; want the defined event", e.Name, got, ok)
		}
	}
	// Each bucket is fed by its cycle-level cause and its slot counter;
	// bad-gate additionally by the freeze counter.
	want := map[Bucket]int{BucketRetiring: 2, BucketFrontend: 2, BucketBackend: 2, BucketBadGate: 3}
	for b, n := range want {
		if buckets[b] != n {
			t.Errorf("bucket %q fed by %d events, want %d", b, buckets[b], n)
		}
	}
	if _, ok := Lookup("NO.SUCH.EVENT"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
}

func TestCountsAddMergeNames(t *testing.T) {
	c := Counts{}
	c.Add(Cycles, 10)
	c.Add(Cycles, 5)
	c.Add(L2Miss, 3)
	var nilCounts Counts
	c.Merge(nilCounts) // must not panic
	c.Merge(Counts{L2Miss: 1, CBDrained: 7})
	if c[Cycles] != 15 || c[L2Miss] != 4 || c[CBDrained] != 7 {
		t.Fatalf("after add/merge: %v", c)
	}
	names := c.Names()
	want := []string{CBDrained, Cycles, L2Miss}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", names, want)
		}
	}
}

func TestDelta(t *testing.T) {
	cur := Counts{Cycles: 120, CBDrained: 30}
	prev := Counts{Cycles: 100, L2Miss: 9}
	d := Delta(cur, prev)
	if d[Cycles] != 20 || d[CBDrained] != 30 || d[L2Miss] != -9 {
		t.Fatalf("Delta = %v", d)
	}
	if len(d) != 3 {
		t.Fatalf("Delta has %d keys, want union of 3: %v", len(d), d)
	}
}

func TestTopdownOf(t *testing.T) {
	c := Counts{
		TopdownSlots:         1000,
		TopdownRetiringSlots: 400,
		TopdownFrontendSlots: 100,
		TopdownBackendSlots:  300,
		TopdownBadGateSlots:  200,
	}
	td, ok := TopdownOf(c)
	if !ok {
		t.Fatal("TopdownOf rejected a populated window")
	}
	if td.Slots != 1000 {
		t.Fatalf("Slots = %d", td.Slots)
	}
	sum := td.Retiring + td.Frontend + td.Backend + td.BadGate
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1.0", sum)
	}
	if _, ok := TopdownOf(Counts{}); ok {
		t.Error("TopdownOf accepted a zero-slot window")
	}
}
