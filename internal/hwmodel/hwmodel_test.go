package hwmodel

import (
	"math"
	"testing"

	"github.com/cmlasu/unsync/internal/mem"
)

// within checks got against want with a relative tolerance.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s = %.4g, want %.4g (off by %.2f%%)", name, got, want, 100*rel)
	}
}

func TestBaselineCoreMatchesPaper(t *testing.T) {
	m := BaselineMIPSCore()
	within(t, "baseline core area", m.AreaUM2(), 98558, 0.001)
	within(t, "baseline core power", m.PowerMW(), 1153, 0.001)
}

func TestRegfileUsesPaperCell(t *testing.T) {
	// 32 x 32-bit register file: cells alone are 1024 x 7.80 µm².
	m := BaselineMIPSCore()
	rf := m.Block("regfile")
	if rf == nil {
		t.Fatal("no regfile block")
	}
	cells := 1024 * RegFileCellUM2
	if rf.AreaUM2 < cells {
		t.Errorf("regfile area %.0f below its raw cell area %.0f", rf.AreaUM2, cells)
	}
}

func TestUnSyncCoreMatchesPaper(t *testing.T) {
	m := UnSyncCore()
	within(t, "unsync core area", m.AreaUM2(), 115945, 0.002)
	within(t, "unsync core power", m.PowerMW(), 1635, 0.002)
	// The paper: +17.6% core area over baseline.
	base := BaselineMIPSCore()
	within(t, "unsync core area overhead",
		(m.AreaUM2()-base.AreaUM2())/base.AreaUM2(), 0.176, 0.02)
	// Every sequential block must have a DMR shadow.
	for _, b := range base.Blocks {
		if b.Kind == KindSequential && m.Block(b.Name+"-dmr-shadow") == nil {
			t.Errorf("sequential block %q has no DMR shadow", b.Name)
		}
		if b.Kind == KindStorage && m.Block(b.Name+"-parity") == nil {
			t.Errorf("storage block %q has no parity", b.Name)
		}
	}
}

func TestReunionCoreMatchesPaper(t *testing.T) {
	m := ReunionCore(10)
	within(t, "reunion core area", m.AreaUM2(), 144005, 0.002)
	within(t, "reunion core power", m.PowerMW(), 2038, 0.002)
}

func TestCheckStageVsExecuteStage(t *testing.T) {
	// §IV-A1: the CHECK stage occupies ~75% of the Execute stage area.
	ratio := CheckStageAreaUM2(10) / ExecuteStageAreaUM2()
	within(t, "CHECK/Execute area ratio", ratio, 0.75, 0.02)
}

func TestCSBScaling(t *testing.T) {
	if CSBEntries(10) != 17 {
		t.Errorf("CSBEntries(10) = %d", CSBEntries(10))
	}
	// §IV-A3: FI=10 CSB is 17 x 66 = 1122 bits; area = 1122 x 10.40.
	within(t, "CSB area FI=10", CSBAreaUM2(10), 1122*10.40, 1e-9)
	// §IV-A3: FI=50 CSB occupies 39125 µm².
	within(t, "CSB area FI=50", CSBAreaUM2(50), 39125, 0.001)
	// CSB area vs a 32x32 register file: paper says the CSB occupies
	// 1.46x the regfile area (cell 10.40 vs 7.80, extra read port).
	rfCells := 1024 * RegFileCellUM2
	within(t, "CSB/regfile cell-area ratio", CSBAreaUM2(10)/rfCells, 1.46, 0.01)
}

func TestCacheModelMatchesPaper(t *testing.T) {
	c := DefaultCacti()
	// 64 KB split L1 without protection: 0.1934 mm², 38.35 mW.
	within(t, "L1 area (none)", c.CacheAreaUM2(64<<10, 64, mem.ProtNone), 193400, 0.005)
	within(t, "L1 power (none)", c.CachePowerMW(64<<10, 64, mem.ProtNone), 38.35, 0.005)
	// Parity: 0.1939 mm², 38.45 mW.
	within(t, "L1 area (parity)", c.CacheAreaUM2(64<<10, 64, mem.ProtParity), 193900, 0.005)
	within(t, "L1 power (parity)", c.CachePowerMW(64<<10, 64, mem.ProtParity), 38.45, 0.005)
	// SECDED: 0.2086 mm², 42.15 mW.
	within(t, "L1 area (secded)", c.CacheAreaUM2(64<<10, 64, mem.ProtSECDED), 208600, 0.01)
	within(t, "L1 power (secded)", c.CachePowerMW(64<<10, 64, mem.ProtSECDED), 42.15, 0.01)
}

func TestCacheProtectionOverheadFractions(t *testing.T) {
	c := DefaultCacti()
	base := c.CacheAreaUM2(64<<10, 64, mem.ProtNone)
	par := c.CacheAreaUM2(64<<10, 64, mem.ProtParity)
	sec := c.CacheAreaUM2(64<<10, 64, mem.ProtSECDED)
	// §VI-A1: parity ~0.2% cache area; SECDED ~7.85%.
	if ov := 100 * (par - base) / base; ov > 0.6 || ov <= 0 {
		t.Errorf("parity area overhead = %.2f%%, want ~0.2%%", ov)
	}
	within(t, "SECDED area overhead %", 100*(sec-base)/base, 7.85, 0.05)
	// Power: SECDED ~10% more.
	bp := c.CachePowerMW(64<<10, 64, mem.ProtNone)
	sp := c.CachePowerMW(64<<10, 64, mem.ProtSECDED)
	within(t, "SECDED power overhead %", 100*(sp-bp)/bp, 10, 0.06)
}

func TestCBMatchesPaper(t *testing.T) {
	// Table II: CB = 0.00387 mm², 0.77258 mW at 10 entries.
	within(t, "CB area", CBAreaUM2(10), 3870, 0.002)
	within(t, "CB power", CBPowerMW(10), 0.77258, 0.002)
	// Linear scaling sanity.
	if CBAreaUM2(20) <= CBAreaUM2(10) {
		t.Error("CB area must grow with entries")
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	tab := Compute(DefaultParams())

	within(t, "basic total area", tab.Basic.TotalAreaUM2, 291958, 0.005)
	within(t, "reunion total area", tab.Reunion.TotalAreaUM2, 352605, 0.005)
	within(t, "unsync total area", tab.UnSync.TotalAreaUM2, 313715, 0.005)

	within(t, "basic total power", tab.Basic.TotalPowerW, 1.19, 0.01)
	within(t, "reunion total power", tab.Reunion.TotalPowerW, 2.08, 0.01)
	within(t, "unsync total power", tab.UnSync.TotalPowerW, 1.67, 0.01)

	// Overheads: Reunion 20.77% area / 74.79% power; UnSync 7.45% / 40.34%.
	if ov := tab.Reunion.AreaOverheadPct(tab.Basic); math.Abs(ov-20.77) > 0.5 {
		t.Errorf("reunion area overhead = %.2f%%, want ~20.77%%", ov)
	}
	if ov := tab.UnSync.AreaOverheadPct(tab.Basic); math.Abs(ov-7.45) > 0.5 {
		t.Errorf("unsync area overhead = %.2f%%, want ~7.45%%", ov)
	}
	if ov := tab.Reunion.PowerOverheadPct(tab.Basic); math.Abs(ov-74.79) > 1.5 {
		t.Errorf("reunion power overhead = %.2f%%, want ~74.79%%", ov)
	}
	if ov := tab.UnSync.PowerOverheadPct(tab.Basic); math.Abs(ov-40.34) > 1.5 {
		t.Errorf("unsync power overhead = %.2f%%, want ~40.34%%", ov)
	}

	// Headline: 13.32 pp less area overhead, 34.45 pp less power overhead.
	if d := tab.AreaSavingPP(); math.Abs(d-13.32) > 0.7 {
		t.Errorf("area saving = %.2f pp, want ~13.32", d)
	}
	if d := tab.PowerSavingPP(); math.Abs(d-34.45) > 2 {
		t.Errorf("power saving = %.2f pp, want ~34.45", d)
	}

	// CAOs used by Table III.
	if cao := tab.CoreAreaOverhead(tab.Reunion); math.Abs(cao-0.2077) > 0.005 {
		t.Errorf("reunion CAO = %.4f, want ~0.2077", cao)
	}
	if cao := tab.CoreAreaOverhead(tab.UnSync); math.Abs(cao-0.0745) > 0.005 {
		t.Errorf("unsync CAO = %.4f, want ~0.0745", cao)
	}
}

func TestReunionFIScaling(t *testing.T) {
	// Growing the FI grows the CSB and its allied circuitry (§IV-A3).
	a10 := ReunionCore(10).AreaUM2()
	a50 := ReunionCore(50).AreaUM2()
	if a50 <= a10 {
		t.Error("Reunion core area must grow with FI")
	}
	// At FI=50 the CSB alone approaches the scale of a small MIPS core
	// (the paper quotes 91% of a 42818 µm² core, cache excluded).
	if csb := CSBAreaUM2(50); csb/42818 < 0.85 || csb/42818 > 0.95 {
		t.Errorf("CSB(50)/small-core ratio = %.2f, want ~0.91", csb/42818)
	}
	// Default FI for invalid input.
	if ReunionCore(0).AreaUM2() != ReunionCore(10).AreaUM2() {
		t.Error("invalid FI should default to 10")
	}
}

func TestBlockLookupAndKinds(t *testing.T) {
	m := BaselineMIPSCore()
	if m.Block("nonexistent") != nil {
		t.Error("Block should return nil for unknown names")
	}
	if m.KindAreaUM2(KindSequential) != 3500+6058 {
		t.Errorf("sequential area = %g", m.KindAreaUM2(KindSequential))
	}
	if KindStorage.String() != "storage" || KindSequential.String() != "sequential" ||
		KindCombinational.String() != "combinational" {
		t.Error("kind names wrong")
	}
}

func TestDetectionTechniqueAblation(t *testing.T) {
	// The paper's design choice: parity on storage, DMR on per-cycle
	// sequential elements. The ablation: protecting storage with DMR
	// instead (duplicate + compare) must cost strictly more area.
	base := BaselineMIPSCore()
	hybrid := UnSyncCore().AreaUM2() - base.AreaUM2()
	dmrEverything := 0.0
	for _, b := range base.Blocks {
		if b.Kind == KindStorage || b.Kind == KindSequential {
			dmrEverything += b.AreaUM2 // duplicate
		}
	}
	dmrEverything += dmrCompareAreaUM2 * 2 // more comparators
	if hybrid >= dmrEverything {
		t.Errorf("hybrid detection (%.0f µm²) not cheaper than DMR-everywhere (%.0f µm²)",
			hybrid, dmrEverything)
	}
}
