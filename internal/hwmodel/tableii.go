package hwmodel

import "github.com/cmlasu/unsync/internal/mem"

// ConfigRow is one column of Table II: area and power of a single core
// configuration (core + split L1 + CB where present).
type ConfigRow struct {
	Name string

	CoreAreaUM2  float64
	L1AreaMM2    float64
	CBAreaMM2    float64 // 0 when absent
	TotalAreaUM2 float64

	CorePowerW  float64
	L1PowerMW   float64
	CBPowerMW   float64
	TotalPowerW float64
}

// AreaOverheadPct returns the total-area overhead over base, in percent.
func (r ConfigRow) AreaOverheadPct(base ConfigRow) float64 {
	return 100 * (r.TotalAreaUM2 - base.TotalAreaUM2) / base.TotalAreaUM2
}

// PowerOverheadPct returns the total-power overhead over base.
func (r ConfigRow) PowerOverheadPct(base ConfigRow) float64 {
	return 100 * (r.TotalPowerW - base.TotalPowerW) / base.TotalPowerW
}

// TableII is the hardware-overhead comparison of the paper.
type TableII struct {
	Basic   ConfigRow
	Reunion ConfigRow
	UnSync  ConfigRow
}

// Params parameterizes the Table II computation; DefaultParams matches
// the paper's synthesis point.
type Params struct {
	Cacti       CactiLite
	L1SizeBytes int // per cache; the L1 row covers split I + D
	L1LineBytes int
	FI          int // Reunion fingerprint interval
	CBEntries   int // UnSync communication buffer entries
}

// DefaultParams matches §V: 32 KB split I/D L1, FI=10, CB=10 entries.
func DefaultParams() Params {
	return Params{
		Cacti:       DefaultCacti(),
		L1SizeBytes: 32 << 10,
		L1LineBytes: 64,
		FI:          10,
		CBEntries:   10,
	}
}

// l1Total returns combined split-I/D area (µm²) and power (mW) for one
// protection scheme.
func (p Params) l1Total(prot mem.Protection) (areaUM2, powerMW float64) {
	a := p.Cacti.CacheAreaUM2(2*p.L1SizeBytes, p.L1LineBytes, prot)
	w := p.Cacti.CachePowerMW(2*p.L1SizeBytes, p.L1LineBytes, prot)
	return a, w
}

// Compute assembles Table II.
func Compute(p Params) TableII {
	var t TableII

	mk := func(name string, core CoreModel, prot mem.Protection, cbEntries int) ConfigRow {
		l1a, l1p := p.l1Total(prot)
		row := ConfigRow{
			Name:        name,
			CoreAreaUM2: core.AreaUM2(),
			L1AreaMM2:   l1a / 1e6,
			CorePowerW:  core.PowerMW() / 1e3,
			L1PowerMW:   l1p,
		}
		if cbEntries > 0 {
			row.CBAreaMM2 = CBAreaUM2(cbEntries) / 1e6
			row.CBPowerMW = CBPowerMW(cbEntries)
		}
		row.TotalAreaUM2 = row.CoreAreaUM2 + l1a + row.CBAreaMM2*1e6
		row.TotalPowerW = row.CorePowerW + (row.L1PowerMW+row.CBPowerMW)/1e3
		return row
	}

	t.Basic = mk("basic-mips", BaselineMIPSCore(), mem.ProtNone, 0)
	t.Reunion = mk("reunion", ReunionCore(p.FI), mem.ProtSECDED, 0)
	t.UnSync = mk("unsync", UnSyncCore(), mem.ProtParity, p.CBEntries)
	return t
}

// CoreAreaOverhead returns the per-core area overhead fraction (CAO) of
// a configuration over the baseline — the quantity Table III's die-size
// projection scales by.
func (t TableII) CoreAreaOverhead(row ConfigRow) float64 {
	return (row.TotalAreaUM2 - t.Basic.TotalAreaUM2) / t.Basic.TotalAreaUM2
}

// Headline deltas the paper reports in the abstract/conclusion: the
// difference of overhead percentages between Reunion and UnSync.
func (t TableII) AreaSavingPP() float64 {
	return t.Reunion.AreaOverheadPct(t.Basic) - t.UnSync.AreaOverheadPct(t.Basic)
}

// PowerSavingPP is the power-overhead difference in percentage points.
func (t TableII) PowerSavingPP() float64 {
	return t.Reunion.PowerOverheadPct(t.Basic) - t.UnSync.PowerOverheadPct(t.Basic)
}
