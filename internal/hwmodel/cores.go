package hwmodel

// BaselineMIPSCore returns the block inventory of the synthesized
// baseline MIPS core. The split is calibrated so the totals match the
// paper's post-PNR figures: 98558 µm² and 1.153 W (Table II). The
// register file carries the paper's 7.80 µm²/bit cell.
func BaselineMIPSCore() CoreModel {
	return CoreModel{
		Name: "mips-baseline",
		Blocks: []Block{
			{Name: "pc", Kind: KindSequential, AreaUM2: 3500, PowerMW: 45},
			{Name: "fetch", Kind: KindCombinational, AreaUM2: 4500, PowerMW: 45},
			{Name: "decode", Kind: KindCombinational, AreaUM2: 7500, PowerMW: 70},
			{Name: "regfile", Kind: KindStorage, AreaUM2: 12000, PowerMW: 140}, // 1024 bits x 7.80 + periphery
			{Name: "alu", Kind: KindCombinational, AreaUM2: 15000, PowerMW: 200},
			{Name: "muldiv", Kind: KindCombinational, AreaUM2: 18000, PowerMW: 150},
			{Name: "lsq", Kind: KindStorage, AreaUM2: 9000, PowerMW: 95},
			{Name: "tlb", Kind: KindStorage, AreaUM2: 8000, PowerMW: 80},
			{Name: "pipeline-regs", Kind: KindSequential, AreaUM2: 6058, PowerMW: 120},
			{Name: "control", Kind: KindCombinational, AreaUM2: 15000, PowerMW: 208},
		},
	}
}

// Protection-transform constants.
const (
	// Parity on storage structures: <1% area, ~0.2% power of the
	// protected block (§III-B1).
	parityAreaFrac  = 0.01
	parityPowerFrac = 0.002

	// DMR comparison + EIH interface logic sizing for UnSync,
	// calibrated to the paper's +17.6% core area / ~+42% core power.
	dmrCompareAreaUM2 = 7539.0
	dmrComparePowerMW = 316.4
)

// UnSyncCore returns the UnSync core: the baseline plus DMR shadows on
// every per-cycle sequential block, parity on every storage block, and
// the comparator/EIH logic. Totals land on the paper's 115945 µm² /
// 1.635 W.
func UnSyncCore() CoreModel {
	base := BaselineMIPSCore()
	m := CoreModel{Name: "unsync", Blocks: append([]Block(nil), base.Blocks...)}
	// DMR: duplicate the sequential elements and compare every cycle.
	for _, b := range base.Blocks {
		if b.Kind == KindSequential {
			m.Blocks = append(m.Blocks, Block{
				Name: b.Name + "-dmr-shadow", Kind: KindSequential,
				AreaUM2: b.AreaUM2, PowerMW: b.PowerMW,
			})
		}
	}
	// Parity bits + generate/verify on storage structures.
	for _, b := range base.Blocks {
		if b.Kind == KindStorage {
			m.Blocks = append(m.Blocks, Block{
				Name: b.Name + "-parity", Kind: KindCombinational,
				AreaUM2: b.AreaUM2 * parityAreaFrac, PowerMW: b.PowerMW * parityPowerFrac,
			})
		}
	}
	m.Blocks = append(m.Blocks, Block{
		Name: "dmr-compare-eih", Kind: KindCombinational,
		AreaUM2: dmrCompareAreaUM2, PowerMW: dmrComparePowerMW,
	})
	return m
}

// CSBEntries mirrors reunion.CSBForFI without importing it (one window
// in flight plus the filling partial window).
func CSBEntries(fi int) int { return fi + 7 }

// CSBAreaUM2 returns the CHECK Stage Buffer array area for a
// fingerprint interval: entries x 66 bits x 10.40 µm²/bit. At FI=50
// this reproduces the paper's 39125 µm² (§IV-A3).
func CSBAreaUM2(fi int) float64 {
	return float64(CSBEntries(fi)) * CSBEntryBits * CSBCellUM2
}

// Reunion CHECK-stage calibration (FI = 10 reference point).
const (
	refFI = 10

	checkControlAreaUM2 = 12738.5 // CSB ports, fp shadow buffers, control
	datapathAreaUM2     = 20697.0 // forwarding datapaths: +34% metal wiring

	csbPowerMW      = 295.0
	crcPowerMW      = 38.0
	checkCtlPowerMW = 157.0
	datapathPowerMW = 395.5
)

// ReunionCore returns the Reunion core at the given fingerprint
// interval: the baseline plus the CHECK pipeline stage (fingerprint
// generator, CSB, control) and the register-forwarding datapaths. The
// CSB-dependent parts scale with the FI; at FI=10 the totals land on
// the paper's 144005 µm² / 2.038 W.
func ReunionCore(fi int) CoreModel {
	if fi < 1 {
		fi = refFI
	}
	scale := float64(CSBEntries(fi)) / float64(CSBEntries(refFI))
	t := Tech65nm()
	base := BaselineMIPSCore()
	m := CoreModel{Name: "reunion", Blocks: append([]Block(nil), base.Blocks...)}
	m.Blocks = append(m.Blocks,
		Block{Name: "fingerprint-crc16", Kind: KindCombinational,
			AreaUM2: 238 * t.GateUM2, PowerMW: crcPowerMW},
		Block{Name: "csb", Kind: KindStorage,
			AreaUM2: CSBAreaUM2(fi), PowerMW: csbPowerMW * scale},
		Block{Name: "check-control", Kind: KindCombinational,
			AreaUM2: checkControlAreaUM2 * scale, PowerMW: checkCtlPowerMW * scale},
		Block{Name: "forwarding-datapath", Kind: KindCombinational,
			AreaUM2: datapathAreaUM2 * scale, PowerMW: datapathPowerMW * scale},
	)
	return m
}

// CheckStageAreaUM2 returns the area of the CHECK stage proper
// (fingerprint generator + CSB + control), which the paper compares to
// the Execute stage (§IV-A1: ≈75%).
func CheckStageAreaUM2(fi int) float64 {
	t := Tech65nm()
	scale := float64(CSBEntries(fi)) / float64(CSBEntries(refFI))
	return 238*t.GateUM2 + CSBAreaUM2(fi) + checkControlAreaUM2*scale
}

// ExecuteStageAreaUM2 returns the baseline Execute stage area (ALU +
// multiplier/divider).
func ExecuteStageAreaUM2() float64 {
	base := BaselineMIPSCore()
	return base.Block("alu").AreaUM2 + base.Block("muldiv").AreaUM2
}

// Communication Buffer constants, calibrated to the paper's CB point:
// 10 entries -> 0.00387 mm², 0.77258 mW.
const (
	CBEntryBits  = 96 // address + data + tag
	cbCellUM2    = 3.8
	cbControlUM2 = 222.0
	cbBitPowerMW = 0.000805
)

// CBAreaUM2 returns the Communication Buffer area for a given entry
// count.
func CBAreaUM2(entries int) float64 {
	return float64(entries)*CBEntryBits*cbCellUM2 + cbControlUM2
}

// CBPowerMW returns the Communication Buffer power for a given entry
// count.
func CBPowerMW(entries int) float64 {
	return float64(entries) * CBEntryBits * cbBitPowerMW
}
