// Package hwmodel is the analytic stand-in for the paper's hardware
// synthesis flow (Cadence Encounter RTL synthesis + place-and-route at
// 65 nm / 300 MHz, CACTI for caches). It computes the area and power of
// the three core configurations of Table II — baseline MIPS, Reunion,
// UnSync — from component-level constants, most of which the paper
// reports directly:
//
//   - register-file bit cell 7.80 µm², CSB bit cell 10.40 µm² (§IV-A3);
//   - CRC-16 fingerprint generator: 238 gates (§IV-A2);
//   - CSB entries = FI + 7, 66 bits each (17 entries / 1122 bits at
//     FI=10; 39125 µm² at FI=50);
//   - CHECK stage ≈ 75% of the Execute stage's area, and ≈ 76.8% of the
//     baseline core power in additional consumption (§IV-A1, §VI-A1);
//   - parity: ≈0.2% cache area/power; SECDED: ≈7.85% cache area, ≈10%
//     cache power (§III-B1, §VI-A1);
//   - UnSync detection blocks: +17.6% core area, ≈+42% core power;
//     Reunion forwarding datapaths: +34% metal wiring (§IV-A4).
//
// The model is calibrated so the assembled totals reproduce Table II
// within a fraction of a percent; the package tests pin that agreement.
package hwmodel

// Tech bundles the 65 nm / 300 MHz technology constants used across the
// model.
type Tech struct {
	Node      string
	FreqMHz   float64
	GateUM2   float64 // area of one NAND2-equivalent gate, placed+routed
	GateMW    float64 // average switching power per gate at 300 MHz
	PNRDesity float64 // placement density used for PNR (paper: 0.49)
}

// Tech65nm is the paper's synthesis corner.
func Tech65nm() Tech {
	return Tech{
		Node:      "65nm",
		FreqMHz:   300,
		GateUM2:   1.44,
		GateMW:    0.0011,
		PNRDesity: 0.49,
	}
}

// Paper-reported cell constants (§IV-A3).
const (
	RegFileCellUM2 = 7.80  // one register-file bit
	CSBCellUM2     = 10.40 // one CHECK Stage Buffer bit (extra read port)
	CSBEntryBits   = 66    // one CSB entry
)

// BlockKind classifies a hardware block for protection transforms:
// storage blocks get parity, per-cycle sequential blocks get DMR,
// combinational blocks get nothing.
type BlockKind uint8

const (
	KindCombinational BlockKind = iota
	KindSequential              // accessed every cycle: PC, pipeline registers
	KindStorage                 // read/write separated by >= 1 cycle: RF, LSQ, TLB
)

// String names the block kind.
func (k BlockKind) String() string {
	switch k {
	case KindSequential:
		return "sequential"
	case KindStorage:
		return "storage"
	}
	return "combinational"
}

// Block is one synthesized hardware block.
type Block struct {
	Name    string
	Kind    BlockKind
	AreaUM2 float64
	PowerMW float64
}

// CoreModel is a named list of blocks.
type CoreModel struct {
	Name   string
	Blocks []Block
}

// AreaUM2 returns the summed block area.
func (m CoreModel) AreaUM2() float64 {
	var a float64
	for _, b := range m.Blocks {
		a += b.AreaUM2
	}
	return a
}

// PowerMW returns the summed block power.
func (m CoreModel) PowerMW() float64 {
	var p float64
	for _, b := range m.Blocks {
		p += b.PowerMW
	}
	return p
}

// Block returns the named block, or nil.
func (m CoreModel) Block(name string) *Block {
	for i := range m.Blocks {
		if m.Blocks[i].Name == name {
			return &m.Blocks[i]
		}
	}
	return nil
}

// KindAreaUM2 sums the area of all blocks of one kind.
func (m CoreModel) KindAreaUM2(k BlockKind) float64 {
	var a float64
	for _, b := range m.Blocks {
		if b.Kind == k {
			a += b.AreaUM2
		}
	}
	return a
}
