package hwmodel

import "github.com/cmlasu/unsync/internal/mem"

// CactiLite is a small analytic SRAM/cache area-and-power model in the
// spirit of CACTI, calibrated at the 65 nm node so that a 64 KB
// (2 x 32 KB split I/D) unprotected L1 reproduces the paper's 0.1934 mm²
// and 38.35 mW.
type CactiLite struct {
	CellUM2      float64 // effective placed bit-cell area
	PeriphFactor float64 // periphery (decoders, sense amps) as a fraction of array area
	TagBitsLine  int     // tag + state bits per line

	BitPowerMW    float64 // leakage + activity power per bit
	PeriphPowerMW float64 // fixed periphery power per cache

	ParityLogicGates int // shared parity generate/verify tree
	SECDEDLogicGates int // SECDED generate/verify logic
}

// DefaultCacti returns the calibrated 65 nm model.
func DefaultCacti() CactiLite {
	return CactiLite{
		CellUM2:          0.217,
		PeriphFactor:     0.623,
		TagBitsLine:      24,
		BitPowerMW:       0.00006,
		PeriphPowerMW:    5.42,
		ParityLogicGates: 530,
		SECDEDLogicGates: 900,
	}
}

// CacheBits returns (data, tag, protection) bit counts for a cache of
// the given geometry and protection scheme. SECDED adds 8 check bits per
// 64 data bits; parity adds 1 bit per line (the paper: one parity bit on
// each cache line).
func (c CactiLite) CacheBits(sizeBytes, lineBytes int, prot mem.Protection) (data, tag, protBits int) {
	data = sizeBytes * 8
	lines := sizeBytes / lineBytes
	tag = lines * c.TagBitsLine
	switch prot {
	case mem.ProtParity:
		protBits = lines
	case mem.ProtSECDED:
		protBits = data / 64 * 8
	}
	return data, tag, protBits
}

// CacheAreaUM2 returns the placed area of a cache.
func (c CactiLite) CacheAreaUM2(sizeBytes, lineBytes int, prot mem.Protection) float64 {
	data, tag, protBits := c.CacheBits(sizeBytes, lineBytes, prot)
	array := float64(data+tag+protBits) * c.CellUM2
	// Periphery scales with the unprotected array (the decoders and
	// sense structure do not grow with check bits).
	periph := float64(data+tag) * c.CellUM2 * c.PeriphFactor
	logic := 0.0
	t := Tech65nm()
	switch prot {
	case mem.ProtParity:
		logic = float64(c.ParityLogicGates) * t.GateUM2
	case mem.ProtSECDED:
		logic = float64(c.SECDEDLogicGates) * t.GateUM2
	}
	return array + periph + logic
}

// CachePowerMW returns the cache power at 300 MHz. Check bits toggle
// slightly less than data bits (writes only), hence the 0.9 factor.
func (c CactiLite) CachePowerMW(sizeBytes, lineBytes int, prot mem.Protection) float64 {
	data, tag, protBits := c.CacheBits(sizeBytes, lineBytes, prot)
	p := (float64(data+tag)+0.9*float64(protBits))*c.BitPowerMW + c.PeriphPowerMW
	t := Tech65nm()
	switch prot {
	case mem.ProtParity:
		p += float64(c.ParityLogicGates) * t.GateMW * 0.1 // rarely toggling tree
	case mem.ProtSECDED:
		// ECC generation and verification on every access (§VI-A1).
		p += float64(c.SECDEDLogicGates) * t.GateMW * 0.3
	}
	return p
}
