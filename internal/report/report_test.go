package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	return New("Demo", "name", "value").
		Row("alpha", F(1.5, 2)).
		Row("beta,x", Pct(12.34)).
		Note("calibrated at %s", "65nm")
}

func TestText(t *testing.T) {
	s := sample().Text()
	if !strings.Contains(s, "Demo\n====") {
		t.Errorf("missing title rule:\n%s", s)
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.50") {
		t.Errorf("missing cells:\n%s", s)
	}
	if !strings.Contains(s, "note: calibrated at 65nm") {
		t.Errorf("missing note:\n%s", s)
	}
	// Columns align: every data line has the header's column offset.
	lines := strings.Split(s, "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
			break
		}
	}
	if header == "" {
		t.Fatalf("no header line:\n%s", s)
	}
	col := strings.Index(header, "value")
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			if strings.Index(l, "1.50") != col {
				t.Errorf("misaligned column:\n%s", s)
			}
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	s := sample().CSV()
	if !strings.Contains(s, "\"beta,x\"") {
		t.Errorf("comma cell not quoted:\n%s", s)
	}
	if !strings.HasPrefix(s, "name,value\n") {
		t.Errorf("bad header:\n%s", s)
	}
	q := New("q", "a").Row(`say "hi"`)
	if !strings.Contains(q.CSV(), `"say ""hi"""`) {
		t.Errorf("quote escaping wrong: %s", q.CSV())
	}
}

func TestMarkdown(t *testing.T) {
	s := sample().Markdown()
	if !strings.Contains(s, "### Demo") {
		t.Errorf("missing title:\n%s", s)
	}
	if !strings.Contains(s, "| name | value |") {
		t.Errorf("missing header:\n%s", s)
	}
	if !strings.Contains(s, "| --- | --- |") {
		t.Errorf("missing separator:\n%s", s)
	}
	p := New("p", "a").Row("x|y")
	if !strings.Contains(p.Markdown(), `x\|y`) {
		t.Errorf("pipe not escaped: %s", p.Markdown())
	}
}

func TestRowPadding(t *testing.T) {
	tab := New("t", "a", "b", "c").Row("only")
	if len(tab.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tab.Rows[0])
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 3) != "3.142" {
		t.Error("F")
	}
	if Pct(12.34) != "12.3%" {
		t.Error("Pct")
	}
	if E(0.00129) != "1.29e-03" {
		t.Error("E")
	}
	if I(42) != "42" {
		t.Error("I")
	}
}
