package report

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled horizontal bars — the textual form of the
// paper's bar figures (Figure 4's per-benchmark overhead bars).
type BarChart struct {
	Title string
	Unit  string
	Width int // bar field width in runes; 0 = 50

	labels []string
	values []float64
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// Bar appends one bar.
func (c *BarChart) Bar(label string, value float64) *BarChart {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
	return c
}

// Render draws the chart. Negative values render as a left-marked bar.
func (c *BarChart) Render() string {
	if len(c.values) == 0 {
		return c.Title + "\n(no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxAbs := 0.0
	labelW := 0
	for i, v := range c.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		if n == 0 && v != 0 {
			n = 1
		}
		mark := strings.Repeat("#", n)
		sign := ""
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s |%s%-*s %.2f%s\n", labelW, c.labels[i], sign, width, mark, v, c.Unit)
	}
	return b.String()
}

// LineChart renders one or more series against a shared x-axis as a
// compact text plot — the textual form of the paper's line figures
// (Figures 5 and 6).
type LineChart struct {
	Title  string
	YLabel string
	Height int // plot rows; 0 = 12

	xlabels []string
	series  []lineSeries
}

type lineSeries struct {
	name   string
	values []float64
}

// NewLineChart creates a chart.
func NewLineChart(title, ylabel string) *LineChart {
	return &LineChart{Title: title, YLabel: ylabel}
}

// X sets the shared x-axis labels.
func (c *LineChart) X(labels ...string) *LineChart {
	c.xlabels = labels
	return c
}

// Series appends one named series; it should have one value per x label.
func (c *LineChart) Series(name string, values ...float64) *LineChart {
	c.series = append(c.series, lineSeries{name: name, values: values})
	return c
}

// seriesGlyphs marks the plots of successive series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '@', '%'}

// Render draws the chart.
func (c *LineChart) Render() string {
	if len(c.series) == 0 || len(c.xlabels) == 0 {
		return c.Title + "\n(no data)\n"
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, v := range s.values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	cols := len(c.xlabels)
	colW := 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colW))
	}
	rowOf := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - f)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		for xi, v := range s.values {
			if xi >= cols {
				break
			}
			grid[rowOf(v)][xi*colW+colW/2] = g
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for r := 0; r < height; r++ {
		yv := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s\n", yv, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", cols*colW) + "\n")
	b.WriteString(strings.Repeat(" ", 10))
	for _, xl := range c.xlabels {
		if len(xl) > colW-1 {
			xl = xl[:colW-1]
		}
		fmt.Fprintf(&b, "%-*s", colW, xl)
	}
	b.WriteByte('\n')
	for si, s := range c.series {
		fmt.Fprintf(&b, "  %c = %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", c.YLabel)
	}
	return b.String()
}
