package report

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	c := NewBarChart("Overheads", "%").
		Bar("bzip2", 5.4).
		Bar("ammp", 5.4).
		Bar("sha", 12.6).
		Bar("neg", -1.0)
	s := c.Render()
	if !strings.Contains(s, "Overheads") {
		t.Error("missing title")
	}
	// The longest bar belongs to the largest value.
	lines := strings.Split(s, "\n")
	var shaBar, bzipBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "sha") {
			shaBar = strings.Count(l, "#")
		}
		if strings.HasPrefix(l, "bzip2") {
			bzipBar = strings.Count(l, "#")
		}
	}
	if shaBar <= bzipBar {
		t.Errorf("bar lengths: sha %d <= bzip2 %d", shaBar, bzipBar)
	}
	if !strings.Contains(s, "|-") {
		t.Error("negative value not marked")
	}
	if !strings.Contains(s, "12.60%") {
		t.Error("value annotation missing")
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if !strings.Contains(NewBarChart("t", "").Render(), "(no data)") {
		t.Error("empty chart should say so")
	}
	s := NewBarChart("t", "").Bar("a", 0).Render()
	if strings.Contains(s, "#") {
		t.Error("zero value should draw no bar")
	}
	// Tiny non-zero values still draw one mark.
	s = NewBarChart("t", "").Bar("a", 0.001).Bar("b", 100).Render()
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "a") && !strings.Contains(l, "#") {
			t.Error("tiny value lost its mark")
		}
	}
}

func TestLineChart(t *testing.T) {
	c := NewLineChart("Fig 5", "relative perf").
		X("FI=1", "FI=10", "FI=30").
		Series("ammp", 0.87, 0.76, 0.71).
		Series("galgel", 0.94, 0.72, 0.74)
	s := c.Render()
	if !strings.Contains(s, "Fig 5") || !strings.Contains(s, "* = ammp") ||
		!strings.Contains(s, "o = galgel") {
		t.Errorf("chart incomplete:\n%s", s)
	}
	if !strings.Contains(s, "FI=1") {
		t.Error("x labels missing")
	}
	if !strings.Contains(s, "y: relative perf") {
		t.Error("y label missing")
	}
	// Both glyphs appear in the plot area.
	if strings.Count(s, "*") < 3+1 { // 3 points + legend
		t.Error("series * points missing")
	}
}

func TestLineChartDegenerate(t *testing.T) {
	if !strings.Contains(NewLineChart("t", "").Render(), "(no data)") {
		t.Error("empty chart should say so")
	}
	// Constant series must not divide by zero.
	s := NewLineChart("t", "").X("a", "b").Series("s", 1, 1).Render()
	if !strings.Contains(s, "*") {
		t.Errorf("constant series lost:\n%s", s)
	}
}

func TestLineChartOrdering(t *testing.T) {
	// A decreasing series must place later points on lower rows.
	s := NewLineChart("t", "").X("a", "b", "c").Series("s", 3, 2, 1).Render()
	lines := strings.Split(s, "\n")
	rowOf := func(col int) int {
		for r, l := range lines {
			idx := strings.IndexByte(l, '|')
			if idx < 0 {
				continue
			}
			body := l[idx+1:]
			p := col*6 + 3
			if p < len(body) && body[p] == '*' {
				return r
			}
		}
		return -1
	}
	r0, r2 := rowOf(0), rowOf(2)
	if r0 < 0 || r2 < 0 || r0 >= r2 {
		t.Errorf("decreasing series rows: first %d, last %d\n%s", r0, r2, s)
	}
}
