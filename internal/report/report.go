// Package report renders experiment results as aligned text, CSV, or
// Markdown tables — the textual equivalents of the paper's tables and
// figure series.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; missing cells are padded empty, extras are kept.
func (t *Table) Row(cells ...string) *Table {
	row := make([]string, len(cells))
	copy(row, cells)
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Note attaches a footnote rendered under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// F formats a float with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// E formats a float in scientific notation.
func E(v float64) string { return fmt.Sprintf("%.2e", v) }

// I formats an integer-valued quantity.
func I(v uint64) string { return fmt.Sprintf("%d", v) }

func (t *Table) widths() []int {
	n := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, c := range t.Columns {
		if len(c) > w[i] {
			w[i] = len(c)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	w := t.widths()
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, width := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
		rule := make([]string, len(w))
		for i, width := range w {
			rule[i] = strings.Repeat("-", width)
		}
		writeRow(rule)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString(" --- |")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
