// Package progs is a library of real programs written in the
// simulator's assembly, each with its architecturally expected output.
// They diversify the functional fault-injection campaigns (§VI-D is
// only convincing if recovery works across program shapes: pointer
// loops, nested loops, recursion, heavy stores) and serve as
// integration workloads for the timing model.
package progs

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
)

// Program couples source text with its expected printed output.
type Program struct {
	Name     string
	Source   string
	Expected []uint64
}

// Assemble assembles the program.
func (p Program) Assemble() (*asm.Program, error) { return asm.Assemble(p.Source) }

// Run assembles and executes the program, verifying its output against
// Expected. It returns the machine for further inspection.
func (p Program) Run(maxSteps uint64) (*emu.Machine, error) {
	prog, err := p.Assemble()
	if err != nil {
		return nil, fmt.Errorf("progs: %s: %w", p.Name, err)
	}
	m := emu.New(prog)
	if err := m.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("progs: %s: %w", p.Name, err)
	}
	if !m.Halted {
		return m, fmt.Errorf("progs: %s: did not halt", p.Name)
	}
	if len(m.Output) != len(p.Expected) {
		return m, fmt.Errorf("progs: %s: output %v, want %v", p.Name, m.Output, p.Expected)
	}
	for i := range p.Expected {
		if m.Output[i] != p.Expected[i] {
			return m, fmt.Errorf("progs: %s: output %v, want %v", p.Name, m.Output, p.Expected)
		}
	}
	return m, nil
}

// All returns the whole library.
func All() []Program {
	return []Program{BubbleSort, MatMul, Sieve, GCD, Fibonacci, Checksum}
}

// ByName returns one program.
func ByName(name string) (Program, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// BubbleSort sorts 16 words descending-initialized and prints the
// middle elements — store-heavy with data-dependent branches.
var BubbleSort = Program{
	Name:     "bubblesort",
	Expected: []uint64{7, 8},
	Source: `
	la r10, arr
	li r1, 0
	li r2, 16
init:                 ; arr[i] = 15 - i
	li r3, 15
	sub r3, r3, r1
	sw r3, 0(r10)
	addi r10, r10, 4
	addi r1, r1, 1
	blt r1, r2, init

	li r5, 0          ; pass counter
passes:
	la r10, arr
	li r1, 0
	li r6, 15         ; inner bound
inner:
	lw r3, 0(r10)
	lw r4, 4(r10)
	bge r4, r3, noswap
	sw r4, 0(r10)
	sw r3, 4(r10)
noswap:
	addi r10, r10, 4
	addi r1, r1, 1
	blt r1, r6, inner
	addi r5, r5, 1
	blt r5, r2, passes

	la r10, arr
	lw r4, 28(r10)    ; arr[7] == 7
	li r2, 1
	syscall
	lw r4, 32(r10)    ; arr[8] == 8
	syscall
	halt
.data
arr: .space 64
`,
}

// MatMul multiplies two 4x4 matrices (A[i][j]=i+j, B[i][j]=i*j) and
// prints C[2][3] and C[3][3] — nested loops, multiply-accumulate.
var MatMul = Program{
	Name: "matmul",
	// C[i][j] = sum_k (i+k)*(k*j) = j*sum_k (i*k + k^2); sum_k k = 6,
	// sum_k k^2 = 14 for k=0..3 -> C[i][j] = j*(6i + 14).
	Expected: []uint64{3 * (6*2 + 14), 3 * (6*3 + 14)},
	Source: `
	; build A and B
	li r1, 0          ; i
	li r9, 4
	la r10, A
	la r11, B
build:
	li r2, 0          ; j
buildj:
	add r3, r1, r2    ; A[i][j] = i+j
	sw r3, 0(r10)
	mul r4, r1, r2    ; B[i][j] = i*j
	sw r4, 0(r11)
	addi r10, r10, 4
	addi r11, r11, 4
	addi r2, r2, 1
	blt r2, r9, buildj
	addi r1, r1, 1
	blt r1, r9, build

	; C = A x B
	li r1, 0          ; i
mi:
	li r2, 0          ; j
mj:
	li r5, 0          ; acc
	li r3, 0          ; k
mk:
	; A[i][k]
	slli r6, r1, 2
	add r6, r6, r3
	slli r6, r6, 2
	la r7, A
	add r7, r7, r6
	lw r7, 0(r7)
	; B[k][j]
	slli r6, r3, 2
	add r6, r6, r2
	slli r6, r6, 2
	la r8, B
	add r8, r8, r6
	lw r8, 0(r8)
	mul r7, r7, r8
	add r5, r5, r7
	addi r3, r3, 1
	blt r3, r9, mk
	; store C[i][j]
	slli r6, r1, 2
	add r6, r6, r2
	slli r6, r6, 2
	la r7, C
	add r7, r7, r6
	sw r5, 0(r7)
	addi r2, r2, 1
	blt r2, r9, mj
	addi r1, r1, 1
	blt r1, r9, mi

	la r7, C
	lw r4, 44(r7)     ; C[2][3]
	li r2, 1
	syscall
	lw r4, 60(r7)     ; C[3][3]
	syscall
	halt
.data
A: .space 64
B: .space 64
C: .space 64
`,
}

// Sieve of Eratosthenes up to 100; prints the prime count (25).
var Sieve = Program{
	Name:     "sieve",
	Expected: []uint64{25},
	Source: `
	la r10, flags
	li r1, 2
	li r2, 100
outer:
	slli r3, r1, 2
	add r3, r3, r10
	lw r4, 0(r3)
	bne r4, r0, next   ; already composite
	; mark multiples
	add r5, r1, r1
mark:
	bge r5, r2, next
	slli r6, r5, 2
	add r6, r6, r10
	li r7, 1
	sw r7, 0(r6)
	add r5, r5, r1
	j mark
next:
	addi r1, r1, 1
	blt r1, r2, outer

	; count zeros in [2, 100)
	li r1, 2
	li r4, 0
count:
	slli r3, r1, 2
	add r3, r3, r10
	lw r5, 0(r3)
	bne r5, r0, skip
	addi r4, r4, 1
skip:
	addi r1, r1, 1
	blt r1, r2, count
	li r2, 1
	syscall
	halt
.data
flags: .space 400
`,
}

// GCD computes gcd(1071, 462) = 21 by Euclid's algorithm with REM.
var GCD = Program{
	Name:     "gcd",
	Expected: []uint64{21},
	Source: `
	li r1, 1071
	li r2, 462
loop:
	beq r2, r0, done
	rem r3, r1, r2
	mv r1, r2
	mv r2, r3
	j loop
done:
	mv r4, r1
	li r2, 1
	syscall
	halt
`,
}

// Fibonacci computes fib(18) = 2584 recursively using a call stack —
// exercises jal/jr and stack stores/loads.
var Fibonacci = Program{
	Name:     "fib-recursive",
	Expected: []uint64{2584},
	Source: `
	la r29, stacktop
	li r4, 18
	jal r31, fib
	li r2, 1
	syscall
	halt

fib:                   ; r4 = n -> r4 = fib(n)
	li r5, 2
	blt r4, r5, fibbase
	addi r29, r29, -24
	sd r31, 0(r29)     ; save ra
	sd r4, 8(r29)      ; save n
	addi r4, r4, -1
	jal r31, fib
	sd r4, 16(r29)     ; save fib(n-1)
	ld r4, 8(r29)
	addi r4, r4, -2
	jal r31, fib
	ld r5, 16(r29)
	add r4, r4, r5
	ld r31, 0(r29)
	addi r29, r29, 24
fibbase:
	jr r31
.data
	.space 8192
stacktop: .word 0
`,
}

// Checksum folds a filled array through a shift/xor accumulator and
// prints it — the workhorse of the fault campaigns.
var Checksum = Program{
	Name:     "checksum",
	Expected: []uint64{24814275179245280}, // architecturally computed fold
	Source:   checksumSource,
}

const checksumSource = `
	la r10, buf
	li r1, 0
	li r2, 0
	li r3, 64
fill:
	mul r4, r2, r2
	xori r4, r4, 0x3c
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, fill
	la r10, buf
	li r2, 0
fold:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 7
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, fold
	mv r4, r1
	li r2, 1
	syscall
	halt
.data
buf: .space 256
`
