package progs

import (
	"testing"

	"github.com/cmlasu/unsync/internal/fault"
)

func TestAllProgramsProduceExpectedOutput(t *testing.T) {
	if len(All()) < 6 {
		t.Fatalf("library has %d programs", len(All()))
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Run(10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if m.InstCount == 0 {
				t.Fatal("no instructions executed")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gcd"); !ok {
		t.Error("gcd missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("found nonexistent program")
	}
}

func TestDistinctShapes(t *testing.T) {
	// The library is useful because the programs differ structurally:
	// instruction counts must spread over an order of magnitude.
	var min, max uint64 = ^uint64(0), 0
	for _, p := range All() {
		m, err := p.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if m.InstCount < min {
			min = m.InstCount
		}
		if m.InstCount > max {
			max = m.InstCount
		}
	}
	if max < 10*min {
		t.Errorf("program sizes too uniform: %d..%d", min, max)
	}
}

// Every program must recover from a detected register upset under
// UnSync semantics — the §VI-D claim across program shapes.
func TestUnSyncRecoveryAcrossPrograms(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			golden, err := p.Run(10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			step := golden.InstCount / 3
			o, err := fault.UnSyncTrial(prog, step,
				fault.Flip{Space: fault.SpaceIntReg, Index: 1, Bit: 9}, true, 20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if o != fault.OutcomeRecovered && o != fault.OutcomeBenign {
				t.Errorf("outcome = %v", o)
			}
		})
	}
}

// Reunion heals transient in-flight upsets on every program shape.
func TestReunionTransientRecoveryAcrossPrograms(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			golden, err := p.Run(10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			step := golden.InstCount / 4
			o, err := fault.ReunionTrial(prog, step, fault.Flip{Bit: 5}, true, 10, 40_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if o != fault.OutcomeRecovered && o != fault.OutcomeBenign {
				t.Errorf("outcome = %v", o)
			}
		})
	}
}
