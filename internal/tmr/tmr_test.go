package tmr

import (
	"testing"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/trace"
)

func mkRecs(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		if i%6 == 3 {
			recs[i] = trace.Record{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1,
				Addr: uint64(0x100000 + (i%512)*8)}
		} else {
			recs[i] = trace.Record{Class: isa.ClassIntALU, Dst: int8(1 + i%40), Src1: -1, Src2: -1}
		}
		recs[i].Seq = uint64(i)
		recs[i].PC = 0x4000 + uint64(i%64)*4
	}
	return recs
}

func newTriple(t *testing.T, recs []trace.Record, cfg Config) *Triple {
	t.Helper()
	var streams [3]trace.Stream
	for i := range streams {
		c := make([]trace.Record, len(recs))
		copy(c, recs)
		streams[i] = trace.NewSliceStream(c)
	}
	return NewTriple(pipeline.DefaultConfig(), mem.DefaultConfig(), cfg, streams)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.CBEntries = 0
	if bad.Validate() == nil {
		t.Error("invalid config accepted")
	}
}

func TestTripleRunsToCompletion(t *testing.T) {
	recs := mkRecs(6_000)
	tr := newTriple(t, recs, DefaultConfig())
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	for i, c := range tr.Cores {
		if c.Stats.Insts != 6_000 {
			t.Errorf("core %d committed %d", i, c.Stats.Insts)
		}
	}
	if tr.Stats.Drained != 1000 {
		t.Errorf("Drained = %d, want 1000", tr.Stats.Drained)
	}
	if tr.Stats.Maskings != 0 || tr.Stats.Resyncs != 0 {
		t.Errorf("spurious maskings=%d resyncs=%d on an error-free run",
			tr.Stats.Maskings, tr.Stats.Resyncs)
	}
	if tr.IPC() <= 0 {
		t.Error("IPC <= 0")
	}
}

func TestTripleToleratesSkewWithoutSpuriousResyncs(t *testing.T) {
	// Freeze one core for a while: the quorum drains without it, and
	// its late entries must be absorbed by catch-up pops, not votes.
	recs := mkRecs(8_000)
	tr := newTriple(t, recs, DefaultConfig())
	tr.Cores[2].FreezeUntil(600)
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Maskings != 0 || tr.Stats.Resyncs != 0 {
		t.Errorf("skew caused maskings=%d resyncs=%d", tr.Stats.Maskings, tr.Stats.Resyncs)
	}
	if tr.Stats.Drained == 0 {
		t.Error("nothing drained")
	}
}

func TestResyncFreezesOnlyStruckCore(t *testing.T) {
	recs := mkRecs(10_000)
	tr := newTriple(t, recs, DefaultConfig())
	tr.ScheduleResync(200, 1)
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Resyncs != 1 {
		t.Fatalf("resyncs = %d", tr.Stats.Resyncs)
	}
	if tr.Cores[1].Stats.FrozenCycles == 0 {
		t.Error("struck core did not freeze")
	}
	if tr.Cores[0].Stats.FrozenCycles != 0 || tr.Cores[2].Stats.FrozenCycles != 0 {
		t.Error("healthy cores froze — TMR must mask, not stall the quorum")
	}
	for i, c := range tr.Cores {
		if c.Stats.Insts != 10_000 {
			t.Errorf("core %d committed %d", i, c.Stats.Insts)
		}
	}
}

// TMR's headline property: under frequent errors the quorum's pace is
// unaffected, while a DMR pair pays the full recovery stall each time.
func TestMaskingBeatsPairRecoveryUnderErrors(t *testing.T) {
	recs := mkRecs(20_000)
	clean := newTriple(t, recs, DefaultConfig())
	if err := clean.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	faulty := newTriple(t, recs, DefaultConfig())
	for cyc := uint64(500); cyc <= 4_000; cyc += 500 {
		faulty.ScheduleResync(cyc, int(cyc/500)%3)
	}
	if err := faulty.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if faulty.Stats.Resyncs != 8 {
		t.Fatalf("resyncs = %d", faulty.Stats.Resyncs)
	}
	// The quorum keeps pace: total cycles grow by far less than the
	// serial resync cost (masking overlaps with execution).
	slowdown := float64(faulty.Cycle()) / float64(clean.Cycle())
	if slowdown > 1.25 {
		t.Errorf("TMR slowdown under 8 errors = %.2fx; masking should hide most of it", slowdown)
	}
}

func TestDivergentHeadOutvoted(t *testing.T) {
	// Corrupt one core's CB head seq directly: with all three heads
	// present, the quorum drains and the divergent core is masked.
	recs := mkRecs(3_000)
	tr := newTriple(t, recs, DefaultConfig())
	// Run until all three CBs have entries.
	for i := 0; i < 200_000 && (tr.CBLen(0) == 0 || tr.CBLen(1) == 0 || tr.CBLen(2) == 0); i++ {
		// Stall draining by keeping the bus busy is fiddly; instead
		// step until buffers naturally overlap.
		tr.Step()
	}
	if tr.CBLen(0) == 0 || tr.CBLen(1) == 0 || tr.CBLen(2) == 0 {
		t.Skip("buffers never overlapped in this configuration")
	}
	tr.cb[2][0].seq += 1_000_000 // corrupted tag
	for i := 0; i < 10_000 && tr.Stats.Maskings == 0; i++ {
		tr.Step()
	}
	if tr.Stats.Maskings == 0 {
		t.Fatal("divergent head never outvoted")
	}
	for i := 0; i < 10 && tr.Stats.Resyncs == 0; i++ {
		tr.Step() // the scheduled resync fires on a later cycle
	}
	if tr.Stats.Resyncs == 0 {
		t.Fatal("divergent core not resynchronized")
	}
	if err := tr.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleResyncPanicsOnBadCore(t *testing.T) {
	tr := newTriple(t, mkRecs(10), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.ScheduleResync(0, 3)
}

func TestResetStats(t *testing.T) {
	tr := newTriple(t, mkRecs(5_000), DefaultConfig())
	for i := 0; i < 500; i++ {
		tr.Step()
	}
	tr.ResetStats()
	if tr.Stats.Drained != 0 || tr.Cores[0].Stats.Insts != 0 {
		t.Error("ResetStats incomplete")
	}
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestMedianIPC(t *testing.T) {
	tr := newTriple(t, mkRecs(100), DefaultConfig())
	if err := tr.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// All three cores identical: the median equals each core's rate.
	want := float64(tr.Cores[0].Stats.Insts) / float64(tr.Cycle())
	if got := tr.IPC(); got != want {
		t.Errorf("IPC = %g, want %g", got, want)
	}
}

// TestMedianIPCSelectsMiddleCore pins the quorum-pace definition: with
// the three cores at different committed counts, IPC reports the
// MEDIAN core's pace — not the leader's (that core may be about to be
// outvoted) and not the straggler's (the quorum does not wait for it).
func TestMedianIPCSelectsMiddleCore(t *testing.T) {
	tr := newTriple(t, mkRecs(10), DefaultConfig())
	cases := []struct {
		insts [3]uint64
		med   uint64
	}{
		{[3]uint64{900, 1000, 1100}, 1000},  // ordered
		{[3]uint64{1100, 900, 1000}, 1000},  // rotated
		{[3]uint64{1000, 1000, 700}, 1000},  // straggler ignored
		{[3]uint64{1300, 1000, 1000}, 1000}, // leader ignored
		{[3]uint64{500, 500, 500}, 500},     // unanimous
	}
	for _, c := range cases {
		for i, n := range c.insts {
			tr.Cores[i].Stats.Insts = n
		}
		tr.Cores[0].Stats.Cycles = 1000
		want := float64(c.med) / 1000
		if got := tr.IPC(); got != want {
			t.Errorf("insts %v: IPC = %g, want %g (median pace)", c.insts, got, want)
		}
	}
}

// TestIPCUsesMeasurementWindow pins that IPC is computed over the
// post-ResetStats window, not the whole run since construction.
func TestIPCUsesMeasurementWindow(t *testing.T) {
	tr := newTriple(t, mkRecs(5_000), DefaultConfig())
	for i := 0; i < 2_000; i++ {
		tr.Step()
	}
	tr.ResetStats()
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	wholeRun := float64(5_000) / float64(tr.Cycle())
	window := float64(tr.Cores[0].Stats.Insts) / float64(tr.Cores[0].Stats.Cycles)
	if got := tr.IPC(); got != window {
		t.Errorf("IPC = %g, want window rate %g (whole-run rate is %g)", got, window, wholeRun)
	}
}

// TestTripleIPCZeroCycles pins the divide-by-zero guard: an unstepped
// triple reports IPC 0, never NaN.
func TestTripleIPCZeroCycles(t *testing.T) {
	tr := newTriple(t, mkRecs(16), DefaultConfig())
	if got := tr.IPC(); got != 0 {
		t.Errorf("unstepped triple IPC = %v, want 0", got)
	}
}

// TestTripleEvents pins that the triple's event map mirrors
// TripleStats under the repository-wide taxonomy, including the
// three-way summed CB-full stalls.
func TestTripleEvents(t *testing.T) {
	tr := newTriple(t, mkRecs(600), DefaultConfig())
	if err := tr.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	ev := tr.Events()
	if ev[events.CBDrained] != tr.Stats.Drained || tr.Stats.Drained == 0 {
		t.Errorf("CB.DRAINED = %d, TripleStats.Drained = %d", ev[events.CBDrained], tr.Stats.Drained)
	}
	if want := tr.Stats.CBFullStall[0] + tr.Stats.CBFullStall[1] + tr.Stats.CBFullStall[2]; ev[events.CBFullStall] != want {
		t.Errorf("CB.FULL_STALL = %d, want summed %d", ev[events.CBFullStall], want)
	}
}

// TestResetStatsClearsHierarchy pins that the triple's warmup reset
// also covers the memory hierarchy.
func TestResetStatsClearsHierarchy(t *testing.T) {
	tr := newTriple(t, mkRecs(400), DefaultConfig())
	if err := tr.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Hier.Cores[tr.Cores[0].ID].L1D.Stats.Accesses == 0 {
		t.Fatal("no L1D traffic before reset — test is vacuous")
	}
	tr.ResetStats()
	if got := tr.Hier.Cores[tr.Cores[0].ID].L1D.Stats.Accesses; got != 0 {
		t.Errorf("L1D accesses after ResetStats = %d, want 0", got)
	}
}
