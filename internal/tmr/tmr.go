// Package tmr implements the §VIII future-work extension the paper's
// architecture framework allows: a triple-modular-redundant (TMR)
// variant of the UnSync organization with "varied degrees of
// redundancy/resilience trade-offs".
//
// Three identical cores run the same thread. The Communication Buffer
// pairing of the dual design becomes majority voting: a store drains to
// the ECC L2 once at least two cores agree on the head entry. A core
// whose head disagrees — or whose detection hardware raises an error —
// is resynchronized from the majority *without stalling the other two*:
// errors are masked rather than recovered, trading a third core's area
// and power for the elimination of the pair-wide recovery stall.
package tmr

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/trace"
)

// Config holds the TMR parameters.
type Config struct {
	// CBEntries is the per-core Communication Buffer capacity.
	CBEntries int
	// ResyncBase/PerReg/PerLine price the single-core resynchronization
	// (architectural state + L1 copy from a majority core); only the
	// struck core freezes.
	ResyncBase    uint64
	ResyncPerReg  uint64
	ResyncPerLine uint64

	// DetectLatency is the cycles from a strike to the resync trigger.
	// The triple reuses the UnSync core's local detection (parity on
	// storage, DMR on per-cycle elements); zero derives the parity
	// latency from fault.DetectionLatency (2 cycles).
	DetectLatency uint64
}

// DefaultConfig mirrors the UnSync recovery cost model with the dual
// design's 2 KB buffer.
func DefaultConfig() Config {
	return Config{
		CBEntries:     170,
		ResyncBase:    100,
		ResyncPerReg:  2,
		ResyncPerLine: 8,
		DetectLatency: fault.DetectionLatency(fault.DetectParity, 0, 0),
	}
}

// DetectionLatency returns the effective strike-to-detection latency:
// the configured value, or the parity latency when unset.
func (c Config) DetectionLatency() uint64 {
	if c.DetectLatency > 0 {
		return c.DetectLatency
	}
	return fault.DetectionLatency(fault.DetectParity, 0, 0)
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.CBEntries < 1 {
		return fmt.Errorf("tmr: CBEntries %d < 1", c.CBEntries)
	}
	return nil
}

type cbEntry struct {
	seq  uint64
	addr uint64
}

// TripleStats aggregates the triple's counters.
type TripleStats struct {
	Drained      uint64 // majority-voted entries written once to L2
	Maskings     uint64 // divergent heads outvoted and discarded
	Resyncs      uint64 // single-core resynchronizations performed
	ResyncCycles uint64

	CBFullStall [3]uint64
	CBOcc       [3]*stats.Occupancy
}

// Triple is one TMR redundant core-triple.
type Triple struct {
	Cfg   Config
	Cores [3]*pipeline.Core
	Hier  *mem.Hierarchy
	Stats TripleStats

	cb          [3][]cbEntry
	ids         [3]int
	cycle       uint64
	lastDrained int64 // seq of the last store drained by quorum (-1: none)

	pendingResync []resyncEvent
}

type resyncEvent struct {
	at   uint64
	core int
}

// MemConfig matches the UnSync requirements (write-through parity L1).
func MemConfig(memCfg mem.Config) mem.Config {
	memCfg.L1D.Policy = mem.WriteThrough
	memCfg.L1D.Protect = mem.ProtParity
	memCfg.L1I.Protect = mem.ProtParity
	memCfg.L2.Protect = mem.ProtSECDED
	return memCfg
}

// NewTriple builds a TMR triple over its own three-core hierarchy. The
// three streams must produce identical records.
func NewTriple(coreCfg pipeline.Config, memCfg mem.Config, cfg Config, streams [3]trace.Stream) *Triple {
	if err := cfg.Validate(); err != nil {
		//unsync:allow-panic configs are validated at the public API boundary; an invalid one here is a programming error
		panic(err)
	}
	h := mem.NewHierarchy(MemConfig(memCfg), 3)
	t := &Triple{Cfg: cfg, Hier: h, ids: [3]int{0, 1, 2}, lastDrained: -1}
	for i := 0; i < 3; i++ {
		t.Cores[i] = pipeline.NewCore(coreCfg, i, h, streams[i])
		t.Stats.CBOcc[i] = stats.NewOccupancy(cfg.CBEntries)
		t.attach(i, t.Cores[i])
	}
	return t
}

func (t *Triple) attach(side int, c *pipeline.Core) {
	c.CommitGate = func(rec trace.Record, cycle uint64) bool {
		if rec.IsStore() && len(t.cb[side]) >= t.Cfg.CBEntries {
			t.Stats.CBFullStall[side]++
			return false
		}
		return true
	}
	c.OnCommit = func(rec trace.Record, cycle uint64) {
		if rec.IsStore() {
			t.cb[side] = append(t.cb[side], cbEntry{seq: rec.Seq, addr: rec.Addr})
		}
	}
	c.DrainEmpty = func(cycle uint64) bool { return len(t.cb[side]) == 0 }
}

// Cycle returns the triple's cycle counter.
func (t *Triple) Cycle() uint64 { return t.cycle }

// CBLen returns one core's Communication Buffer occupancy.
func (t *Triple) CBLen(side int) int { return len(t.cb[side]) }

// Step advances the triple by one cycle.
func (t *Triple) Step() {
	t.fireResyncs()
	t.drain()
	for _, c := range t.Cores {
		c.Step()
	}
	for i := range t.cb {
		t.Stats.CBOcc[i].Sample(len(t.cb[i]))
	}
	t.cycle++
}

// drain performs majority voting on the CB heads: with at least two
// matching heads present and the bus free, one copy drains to the L2.
// A present-but-divergent minority head is discarded (masked); the
// owning core is scheduled for resynchronization.
func (t *Triple) drain() {
	// Catch-up pops: a lagging core re-produces entries the quorum
	// already drained; they leave its buffer without a vote.
	for i := range t.cb {
		for len(t.cb[i]) > 0 && int64(t.cb[i][0].seq) <= t.lastDrained {
			t.cb[i] = t.cb[i][1:]
		}
	}
	if !t.Hier.Bus.FreeAt(t.cycle) {
		return
	}
	var seqs [3]uint64
	var have [3]bool
	present := 0
	for i := range t.cb {
		if len(t.cb[i]) > 0 {
			seqs[i], have[i] = t.cb[i][0].seq, true
			present++
		}
	}
	if present < 2 {
		return
	}
	// Majority seq among present heads.
	maj, majCount := uint64(0), 0
	for i := 0; i < 3; i++ {
		if !have[i] {
			continue
		}
		n := 0
		for j := 0; j < 3; j++ {
			if have[j] && seqs[j] == seqs[i] {
				n++
			}
		}
		if n > majCount {
			maj, majCount = seqs[i], n
		}
	}
	if majCount < 2 {
		// Two present heads that disagree: wait for the third opinion
		// unless all three are present (then there is still no quorum,
		// which identical streams cannot produce; treat as divergence
		// of the highest-seq head to make progress).
		return
	}
	var addr uint64
	for i := 0; i < 3; i++ {
		if !have[i] {
			continue
		}
		if seqs[i] == maj {
			addr = t.cb[i][0].addr
			t.cb[i] = t.cb[i][1:]
		} else if present == 3 {
			// Outvoted with all three opinions on the table: a genuine
			// divergence. Discard the entry and resynchronize the
			// minority core; the quorum never stalls (masking).
			t.cb[i] = t.cb[i][1:]
			t.Stats.Maskings++
			t.ScheduleResync(t.cycle+1, i)
		}
	}
	t.Hier.WriteLineToL2(t.cycle, addr)
	t.Stats.Drained++
	t.lastDrained = int64(maj)
}

// ScheduleResync schedules a single-core resynchronization (an error
// was detected on the core, or it was outvoted).
func (t *Triple) ScheduleResync(at uint64, core int) {
	if core < 0 || core > 2 {
		//unsync:allow-panic invariant bounds check: a TMR triple has exactly cores 0..2
		panic("tmr: bad core index")
	}
	t.pendingResync = append(t.pendingResync, resyncEvent{at: at, core: core})
}

func (t *Triple) fireResyncs() {
	kept := t.pendingResync[:0]
	for _, ev := range t.pendingResync {
		if ev.at > t.cycle {
			kept = append(kept, ev)
			continue
		}
		t.resync(ev.core)
	}
	t.pendingResync = kept
}

// resync freezes ONLY the erroneous core while it is rebuilt from a
// majority core's state — the other two keep running, which is the TMR
// trade-off: masking instead of a pair-wide stall.
func (t *Triple) resync(core int) {
	donor := (core + 1) % 3
	lines := uint64(t.Hier.Cores[t.ids[donor]].L1D.ValidLines())
	cost := t.Cfg.ResyncBase + uint64(2*isa.NumRegs+1)*t.Cfg.ResyncPerReg + lines*t.Cfg.ResyncPerLine

	t.Cores[core].Restart(t.Cores[donor].Position())
	t.Cores[core].FreezeUntil(t.cycle + cost)
	t.Hier.Cores[t.ids[core]].L1D.InvalidateAll()
	t.cb[core] = append(t.cb[core][:0], t.cb[donor]...)

	t.Stats.Resyncs++
	t.Stats.ResyncCycles += cost
}

// Done reports whether every core finished and the buffers are empty.
func (t *Triple) Done() bool {
	for _, c := range t.Cores {
		if !c.Done() {
			return false
		}
	}
	for i := range t.cb {
		if len(t.cb[i]) != 0 {
			return false
		}
	}
	return true
}

// Run steps to completion or maxCycles.
func (t *Triple) Run(maxCycles uint64) error {
	for !t.Done() {
		if t.cycle >= maxCycles {
			return pipeline.ErrCycleBudget
		}
		t.Step()
	}
	return nil
}

// ResetStats clears statistics (triple, cores and the triple's memory
// hierarchy) after warmup, so every event counter covers only the
// measurement window.
func (t *Triple) ResetStats() {
	for _, c := range t.Cores {
		c.ResetStats()
	}
	t.Hier.ResetStats()
	s := TripleStats{}
	for i := range s.CBOcc {
		s.CBOcc[i] = stats.NewOccupancy(t.Cfg.CBEntries)
	}
	t.Stats = s
}

// Events returns the triple-level event counts of the TMR scheme under
// the repository-wide taxonomy (internal/events): majority voting,
// masking and resynchronization costs. Per-replica stall counters are
// summed; core- and memory-side events are merged in by the
// measurement engine (cmp).
func (t *Triple) Events() events.Counts {
	return events.Counts{
		events.CBFullStall:  t.Stats.CBFullStall[0] + t.Stats.CBFullStall[1] + t.Stats.CBFullStall[2],
		events.CBDrained:    t.Stats.Drained,
		events.TMRMasked:    t.Stats.Maskings,
		events.ResyncCount:  t.Stats.Resyncs,
		events.ResyncCycles: t.Stats.ResyncCycles,
	}
}

// Committed returns the triple's committed-instruction clock: the
// minimum over the three replicas (the engine's one warmup rule — see
// cmp.Drive).
func (t *Triple) Committed() uint64 {
	return min3(t.Cores[0].Stats.Insts, t.Cores[1].Stats.Insts, t.Cores[2].Stats.Insts)
}

// Replicas returns the number of cores a soft error can strike.
func (t *Triple) Replicas() int { return 3 }

// InjectError models a soft-error strike on the given core: the local
// detection hardware raises the resync trigger after the detection
// latency, and the quorum masks the error while the struck core is
// rebuilt.
func (t *Triple) InjectError(cycle uint64, core int) {
	t.ScheduleResync(cycle+t.Cfg.DetectionLatency(), core)
}

// IPC returns the triple's architectural throughput at the quorum's
// pace: the median core's committed instructions per statistics-window
// cycle. The median is the right numerator because majority voting
// drains a store once two cores have produced it — the slowest core
// never gates the quorum (it catches up or is resynchronized), and the
// fastest core's lead is not yet architecturally visible. The
// denominator is the per-core statistics cycle counter, so the method
// reports the measurement window after a ResetStats, not the whole run.
func (t *Triple) IPC() float64 {
	cycles := t.Cores[0].Stats.Cycles
	if cycles == 0 {
		return 0
	}
	a, b, c := t.Cores[0].Stats.Insts, t.Cores[1].Stats.Insts, t.Cores[2].Stats.Insts
	med := a + b + c - min3(a, b, c) - max3(a, b, c)
	return float64(med) / float64(cycles)
}

func min3(a, b, c uint64) uint64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c uint64) uint64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
