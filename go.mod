module github.com/cmlasu/unsync

go 1.22
