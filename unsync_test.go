package unsync

import (
	"strings"
	"testing"
)

func quickRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInsts = 10_000
	rc.MeasureInsts = 30_000
	return rc
}

func TestPublicRun(t *testing.T) {
	rc := quickRC()
	base, err := Run(SchemeBaseline, rc, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	us, err := Run(SchemeUnSync, rc, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(SchemeReunion, rc, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || us.IPC <= 0 || re.IPC <= 0 {
		t.Fatalf("non-positive IPCs: %v %v %v", base.IPC, us.IPC, re.IPC)
	}
	if Overhead(base, re) <= Overhead(base, us) {
		t.Errorf("headline property violated: reunion %.1f%% <= unsync %.1f%%",
			Overhead(base, re), Overhead(base, us))
	}
	if _, err := Run(SchemeBaseline, rc, "bogus"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicRunProfile(t *testing.T) {
	p, ok := BenchmarkByName("sha")
	if !ok {
		t.Fatal("sha missing")
	}
	res, err := RunProfile(SchemeBaseline, quickRC(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "sha" {
		t.Errorf("benchmark label = %q", res.Benchmark)
	}
}

func TestPublicBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 28 {
		t.Errorf("benchmarks = %d, want 28", len(bs))
	}
	if _, ok := BenchmarkByName("nope"); ok {
		t.Error("BenchmarkByName found a nonexistent profile")
	}
}

func TestPublicPairs(t *testing.T) {
	rc := quickRC()
	up, err := NewUnSyncPair(rc, "qsort", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if up.IPC() <= 0 {
		t.Error("UnSync pair IPC <= 0")
	}
	rp, err := NewReunionPair(rc, "qsort", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if rp.Stats.Fingerprints == 0 {
		t.Error("Reunion pair produced no fingerprints")
	}
	if _, err := NewUnSyncPair(rc, "bogus", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := NewReunionPair(rc, "bogus", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicTables(t *testing.T) {
	if !strings.Contains(TableI().Text(), "Issue Queue") {
		t.Error("Table I incomplete")
	}
	res, tab := TableII()
	if res.AreaSavingPP < 12 || res.AreaSavingPP > 15 {
		t.Errorf("area saving = %.2f pp", res.AreaSavingPP)
	}
	if tab == nil {
		t.Error("nil Table II render")
	}
	rows, tab3 := TableIII()
	if len(rows) != 3 || tab3 == nil {
		t.Error("Table III incomplete")
	}
}

func TestPublicFaultSurface(t *testing.T) {
	prog, err := Assemble(`
		li r1, 7
		li r2, 1
		mul r4, r1, r1
		syscall
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 1 || m.Output[0] != 49 {
		t.Errorf("output = %v", m.Output)
	}
	o, err := UnSyncFaultTrial(prog, 2, Flip{Space: SpaceIntReg, Index: 1, Bit: 3}, true, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered && o != OutcomeBenign {
		t.Errorf("outcome = %v", o)
	}
	if len(UnSyncCoverage()) == 0 || len(ReunionCoverage()) == 0 {
		t.Error("coverage maps empty")
	}
	if BreakEvenSER(1.2, 5000, 1.0, 40) <= 0 {
		t.Error("no break-even")
	}
}

func TestPublicOptions(t *testing.T) {
	if len(DefaultOptions().Benchmarks) != 28 {
		t.Error("default options incomplete")
	}
	q := QuickOptions()
	if len(q.Benchmarks) == 0 {
		t.Error("quick options empty")
	}
	if len(FI5Points()) == 0 || len(ManyCoreCatalog()) != 3 {
		t.Error("aux surfaces wrong")
	}
	if HardwareTableII(HardwareParams()).Basic.TotalAreaUM2 <= 0 {
		t.Error("hardware model surface broken")
	}
}

func TestPublicTMR(t *testing.T) {
	rc := quickRC()
	tr, err := NewTMRTriple(rc, DefaultTMRConfig(), "qsort", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.IPC() <= 0 || tr.Stats.Drained == 0 {
		t.Error("TMR triple did not run")
	}
	if _, err := NewTMRTriple(rc, DefaultTMRConfig(), "bogus", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicChips(t *testing.T) {
	rc := quickRC()
	w, err := BenchmarkStream("qsort", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewMixedChip(SchemeUnSync, rc, []StreamFactory{w}, []StreamFactory{w})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if ch.PairIPC(0) <= 0 || ch.SoloIPC(0) <= 0 {
		t.Error("mixed chip IPCs wrong")
	}
	if _, err := BenchmarkStream("bogus", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := NewChip(SchemeUnSync, rc, []StreamFactory{w}); err != nil {
		t.Error(err)
	}
}

func TestPublicExperimentWrappers(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	o.RC.WarmupInsts = 5_000
	o.RC.MeasureInsts = 15_000

	if _, err := Fig4(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig5(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	if _, err := SERSweep(o); err != nil {
		t.Fatal(err)
	}
	if _, err := ROEC(4); err != nil {
		t.Fatal(err)
	}
	if rows, err := AblationWritePolicy(o); err != nil || len(rows) != 2 {
		t.Fatalf("write-policy ablation: %v", err)
	} else if RenderWritePolicy(rows) == nil {
		t.Fatal("nil render")
	}
	if rows, err := AblationForwarding(o); err != nil || len(rows) != 2 {
		t.Fatalf("forwarding ablation: %v", err)
	} else if RenderForwarding(rows) == nil {
		t.Fatal("nil render")
	}
	if RenderDetection(AblationDetection()) == nil {
		t.Fatal("nil detection render")
	}
	if rows, err := ChipInterference(o, [][2]string{{"sha", "qsort"}}, 10_000); err != nil {
		t.Fatal(err)
	} else if RenderInterference(rows) == nil {
		t.Fatal("nil render")
	}
	if res, err := RedundancyStudy(o, "qsort", []float64{0}); err != nil {
		t.Fatal(err)
	} else if res.Render() == nil {
		t.Fatal("nil render")
	}
	if rows, err := AVFEstimate(o); err != nil {
		t.Fatal(err)
	} else if RenderAVF(rows) == nil {
		t.Fatal("nil render")
	}
	if rows, err := ReplicatedFig4(o, 2); err != nil {
		t.Fatal(err)
	} else if RenderReplicated(rows) == nil {
		t.Fatal("nil render")
	}
	if _, err := ReunionFaultCampaign(mustProg(t), 3, true, 10, 5, 100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := UnSyncFaultCampaign(mustProg(t), 3, 5, 100_000); err != nil {
		t.Fatal(err)
	}
	if o, err := ReunionFaultTrial(mustProg(t), 10, Flip{Bit: 3}, true, 10, 100_000); err != nil || o == OutcomeSDC {
		t.Fatalf("trial: %v %v", o, err)
	}
}

func mustProg(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble(`
		li r1, 0
		li r2, 0
		li r3, 40
	loop:
		add r1, r1, r2
		slli r4, r1, 3
		xor r1, r1, r4
		addi r2, r2, 1
		blt r2, r3, loop
		mv r4, r1
		li r2, 1
		syscall
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
