// Quickstart: run one benchmark on all four architectures and print
// the comparison the paper's abstract makes — UnSync delivers redundant
// execution at near-baseline speed, Reunion pays for fingerprint
// synchronization, and the §VIII TMR triple buys error masking with a
// third copy.
package main

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

func main() {
	rc := unsync.DefaultRunConfig()
	rc.WarmupInsts = 20_000
	rc.MeasureInsts = 100_000

	const bench = "bzip2"
	fmt.Printf("running %s on the Table I machine (%d instructions)...\n\n",
		bench, rc.MeasureInsts)

	base, err := unsync.Run(unsync.SchemeBaseline, rc, bench)
	if err != nil {
		log.Fatal(err)
	}
	us, err := unsync.Run(unsync.SchemeUnSync, rc, bench)
	if err != nil {
		log.Fatal(err)
	}
	re, err := unsync.Run(unsync.SchemeReunion, rc, bench)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := unsync.Run(unsync.SchemeTMR, rc, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %8s %12s\n", "architecture", "IPC", "overhead")
	fmt.Printf("%-22s %8.3f %12s\n", "baseline (unprotected)", base.IPC, "—")
	fmt.Printf("%-22s %8.3f %11.1f%%\n", "UnSync pair", us.IPC, unsync.Overhead(base, us))
	fmt.Printf("%-22s %8.3f %11.1f%%\n", "Reunion pair", re.IPC, unsync.Overhead(base, re))
	fmt.Printf("%-22s %8.3f %11.1f%%\n", "TMR triple", tm.IPC, unsync.Overhead(base, tm))

	if st := us.UnSyncStats; st != nil {
		fmt.Printf("\nUnSync communication buffer: %d stores drained to L2, %d CB-full stall cycles\n",
			st.Drained, st.CBFullStall[0]+st.CBFullStall[1])
	}
	if st := re.ReunionStats; st != nil {
		fmt.Printf("Reunion fingerprints: %d compared (CRC-16), %d serialize-stall cycles\n",
			st.Fingerprints, st.SerializeStall[0])
	}
	fmt.Println("\nBoth redundant schemes execute the thread twice; UnSync avoids")
	fmt.Println("inter-core comparison entirely, which is where the gap comes from.")
}
