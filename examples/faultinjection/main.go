// Fault injection: assemble a real program, strike it with single-bit
// upsets, and watch each scheme's recovery machinery work — the §VI-D
// experiment at example scale.
//
// UnSync detects upsets locally (parity/DMR) and copies the healthy
// core's architectural state over the struck core; execution is always
// forward. Reunion detects divergence in its CRC-16 fingerprints and
// rolls back — which heals transient in-flight errors but livelocks on
// a persistently flipped register cell (outside its region of error
// coverage).
package main

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

const program = `
	; iterative checksum over a small array
	la r10, buf
	li r1, 0
	li r2, 0
	li r3, 48
fill:
	mul r4, r2, r2
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, fill
	la r10, buf
	li r2, 0
fold:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 2
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, fold
	mv r4, r1
	li r2, 1
	syscall       ; print the checksum
	halt
.data
buf: .space 256
`

func main() {
	prog, err := unsync.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	golden := unsync.NewMachine(prog)
	if err := golden.Run(100_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden checksum: %d (after %d instructions)\n\n",
		golden.Output[0], golden.InstCount)

	flip := unsync.Flip{Space: unsync.SpaceIntReg, Index: 1, Bit: 9} // the live checksum register

	o, err := unsync.UnSyncFaultTrial(prog, 150, flip, true, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UnSync, flip r1 bit 9 at instruction 150 (parity detects): %v\n", o)

	o, err = unsync.UnSyncFaultTrial(prog, 150, flip, false, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same flip with detection hardware removed:              %v\n\n", o)

	o, err = unsync.ReunionFaultTrial(prog, 150, flip, true, 10, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reunion, transient in-flight upset (inside ROEC):        %v\n", o)

	o, err = unsync.ReunionFaultTrial(prog, 150, flip, false, 10, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reunion, persistent ARF cell upset (outside ROEC):       %v\n\n", o)

	// Campaign view.
	us, err := unsync.UnSyncFaultCampaign(prog, 30, 7, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := unsync.ReunionFaultCampaign(prog, 30, false, 10, 7, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("30-trial campaigns: UnSync %.0f%% correct, Reunion (persistent) %.0f%% correct\n",
		100*us.CorrectRate(), 100*rp.CorrectRate())
	fmt.Printf("Reunion unrecoverable trials: %d — the ARF is outside its coverage\n",
		rp.Unrecoverable)
}
