// Many-core projection: the Table III design-choice exercise. Given the
// per-core area overheads from the synthesis model, project die sizes
// for existing many-core processors — and for a hypothetical processor
// of your own — under both error-resilient implementations.
package main

import (
	"fmt"

	unsync "github.com/cmlasu/unsync"
	"github.com/cmlasu/unsync/internal/dies"
)

func main() {
	res, _ := unsync.TableII()
	fmt.Printf("per-core area overheads from synthesis: Reunion %.2f%%, UnSync %.2f%%\n\n",
		100*res.CAOReunion, 100*res.CAOUnSync)

	fmt.Printf("%-16s %6s %9s %11s %11s %11s\n",
		"processor", "cores", "die(mm2)", "reunion", "unsync", "saved")
	for _, m := range unsync.ManyCoreCatalog() {
		r := m.Project(res.CAOReunion)
		u := m.Project(res.CAOUnSync)
		fmt.Printf("%-16s %6d %9.0f %11.2f %11.2f %11.2f\n",
			m.Vendor+" "+m.Name, m.Cores, m.DieAreaMM2, r, u, r-u)
	}

	// A what-if processor: 256 small cores at 22 nm-ish density.
	custom := dies.ManyCore{
		Name: "Hypothetical-256", Vendor: "ACME", TechNode: "45nm",
		Cores: 256, CoreAreaMM2: 1.2, DieAreaMM2: 420,
	}
	if err := custom.Validate(); err != nil {
		panic(err)
	}
	r := custom.Project(res.CAOReunion)
	u := custom.Project(res.CAOUnSync)
	fmt.Printf("%-16s %6d %9.0f %11.2f %11.2f %11.2f\n",
		custom.Vendor+" "+custom.Name, custom.Cores, custom.DieAreaMM2, r, u, r-u)

	fmt.Println("\nThe gap grows with core count and per-core area — the paper's")
	fmt.Println("argument for choosing UnSync in large many-core designs.")
}
