// Serialization: why traps, memory barriers and atomics hurt Reunion
// but not UnSync (the Figure 4 mechanism), demonstrated with custom
// workload profiles whose serializing fraction is the only thing that
// varies.
package main

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

// profileWithSer builds a gzip-like integer workload with the given
// serializing-instruction fraction.
func profileWithSer(name string, ser float64) unsync.Profile {
	p, ok := unsync.BenchmarkByName("gzip")
	if !ok {
		panic("gzip profile missing")
	}
	p.Name = name
	// Redistribute: shave the serializing budget off the ALU slice.
	p.Mix.IntALU -= ser
	p.Mix.Trap = ser * 0.6
	p.Mix.Membar = ser * 0.25
	p.Mix.Atomic = ser * 0.15
	return p
}

func main() {
	rc := unsync.DefaultRunConfig()
	rc.WarmupInsts = 20_000
	rc.MeasureInsts = 80_000

	fmt.Printf("%-12s %12s %12s %14s %14s\n",
		"serializing", "baseline IPC", "unsync ovh", "reunion ovh", "reunion IPC")

	for _, ser := range []float64{0, 0.005, 0.01, 0.02, 0.04} {
		p := profileWithSer(fmt.Sprintf("ser-%.1f%%", 100*ser), ser)
		base, err := unsync.RunProfile(unsync.SchemeBaseline, rc, p)
		if err != nil {
			log.Fatal(err)
		}
		us, err := unsync.RunProfile(unsync.SchemeUnSync, rc, p)
		if err != nil {
			log.Fatal(err)
		}
		re, err := unsync.RunProfile(unsync.SchemeReunion, rc, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.1f%% %12.3f %11.1f%% %13.1f%% %14.3f\n",
			100*ser, base.IPC, unsync.Overhead(base, us), unsync.Overhead(base, re), re.IPC)
	}

	fmt.Println("\nEach serializing instruction forces Reunion to drain its")
	fmt.Println("fingerprint pipeline twice (all prior windows verified, then its")
	fmt.Println("own single-instruction window), stalling issue meanwhile. UnSync")
	fmt.Println("never compares executions, so the knob barely moves it.")
}
