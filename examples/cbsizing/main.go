// CB sizing: a design-space walk over the Communication Buffer — the
// Figure 6 experiment at example scale. Small CBs throttle commit on
// write-bursty workloads; around 2 KB the bottleneck disappears and the
// UnSync pair runs at baseline speed.
package main

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

func main() {
	rc := unsync.DefaultRunConfig()
	rc.WarmupInsts = 20_000
	rc.MeasureInsts = 80_000

	const bench = "bzip2"
	base, err := unsync.Run(unsync.SchemeBaseline, rc, bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline IPC: %.3f\n\n", bench, base.IPC)
	fmt.Printf("%-18s %8s %10s %16s\n", "CB size", "IPC", "relative", "CB-full stalls")

	for _, entries := range []int{2, 5, 10, 42, 170, 341} {
		rc.UnSync.CBEntries = entries
		res, err := unsync.Run(unsync.SchemeUnSync, rc, bench)
		if err != nil {
			log.Fatal(err)
		}
		var stalls uint64
		if res.UnSyncStats != nil {
			stalls = res.UnSyncStats.CBFullStall[0] + res.UnSyncStats.CBFullStall[1]
		}
		fmt.Printf("%4d entries %4dB %8.3f %9.1f%% %16d\n",
			entries, entries*rc.UnSync.CBEntryBytes, res.IPC,
			100*res.IPC/base.IPC, stalls)
	}

	fmt.Println("\nThe pairing rule (drain only when both cores produced the entry,")
	fmt.Println("one copy to the ECC L2 when the bus is free) is what a too-small")
	fmt.Println("buffer turns into commit back-pressure.")
}
