// Redundancy degrees: the §VIII future-work extension in action — a
// dual-modular UnSync pair against a triple-modular (TMR) variant of
// the same organization, across error rates. The pair stops both cores
// to recover; the triple outvotes the struck core and keeps going.
package main

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

func main() {
	opts := unsync.QuickOptions()
	opts.RC.MeasureInsts = 60_000

	res, err := unsync.RedundancyStudy(opts, "gzip", []float64{0, 1e-5, 1e-4, 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render().Text())

	fmt.Println()
	fmt.Println("Reading the table: error-free, the third core buys nothing —")
	fmt.Println("both degrees run at the baseline's pace. As errors become")
	fmt.Println("frequent, the pair's stop-copy-resume recovery eats its")
	fmt.Println("throughput while the triple's quorum never stalls. The last")
	fmt.Println("row prices the difference in silicon.")

	// The same comparison, driven by hand on live instances.
	tr, err := unsync.NewTMRTriple(opts.RC, unsync.DefaultTMRConfig(), "gzip", 30_000)
	if err != nil {
		log.Fatal(err)
	}
	tr.ScheduleResync(2_000, 0)
	tr.ScheduleResync(6_000, 2)
	if err := tr.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive triple: %d resyncs, %d stores voted to L2, IPC %.3f\n",
		tr.Stats.Resyncs, tr.Stats.Drained, tr.IPC())
}
