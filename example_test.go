package unsync_test

import (
	"fmt"
	"log"

	unsync "github.com/cmlasu/unsync"
)

// Compare the three architectures on one benchmark.
func Example() {
	rc := unsync.DefaultRunConfig()
	rc.WarmupInsts = 5_000
	rc.MeasureInsts = 20_000

	base, err := unsync.Run(unsync.SchemeBaseline, rc, "sha")
	if err != nil {
		log.Fatal(err)
	}
	us, err := unsync.Run(unsync.SchemeUnSync, rc, "sha")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UnSync keeps %.0f%% of baseline throughput\n",
		100*us.IPC/base.IPC)
	// Output:
	// UnSync keeps 100% of baseline throughput
}

// Drive a live UnSync pair cycle by cycle and inject a recovery.
func ExampleNewUnSyncPair() {
	rc := unsync.DefaultRunConfig()
	pair, err := unsync.NewUnSyncPair(rc, "qsort", 10_000)
	if err != nil {
		log.Fatal(err)
	}
	pair.ScheduleRecovery(500, 1) // error detected on core B at cycle 500
	if err := pair.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recoveries: %d, run completed: %v\n",
		pair.Stats.Recoveries, pair.Done())
	// Output:
	// recoveries: 1, run completed: true
}

// Assemble and execute a program on the functional emulator.
func ExampleAssemble() {
	prog, err := unsync.Assemble(`
		li r4, 6
		mul r4, r4, r4
		li r2, 1
		syscall    ; print r4
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	m := unsync.NewMachine(prog)
	if err := m.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Output)
	// Output:
	// [36]
}

// Inject a single-bit register upset and watch UnSync recover it.
func ExampleUnSyncFaultTrial() {
	prog, err := unsync.Assemble(`
		li r1, 0
		li r2, 0
		li r3, 32
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		blt r2, r3, loop
		mv r4, r1
		li r2, 1
		syscall
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	flip := unsync.Flip{Space: unsync.SpaceIntReg, Index: 1, Bit: 12}
	outcome, err := unsync.UnSyncFaultTrial(prog, 50, flip, true, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(outcome)
	// Output:
	// recovered
}

// The Table II headline numbers come straight from the synthesis model.
func ExampleTableII() {
	res, _ := unsync.TableII()
	fmt.Printf("UnSync saves %.1f pp of area overhead and %.1f pp of power overhead\n",
		res.AreaSavingPP, res.PowerSavingPP)
	// Output:
	// UnSync saves 13.3 pp of area overhead and 34.1 pp of power overhead
}
