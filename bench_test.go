package unsync

// One testing.B benchmark per table and figure of the paper's
// evaluation (§V–§VI), plus microbenchmarks of the simulator itself.
// Each experiment benchmark runs the scaled-down quick configuration
// once per iteration and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole
// evaluation in miniature. Run cmd/unsync-bench for the full-scale
// versions.

import (
	"context"

	"testing"

	"github.com/cmlasu/unsync/internal/benchkit"
	"github.com/cmlasu/unsync/internal/experiments"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

func benchOpts() Options {
	o := QuickOptions()
	o.RC.WarmupInsts = 10_000
	o.RC.MeasureInsts = 30_000
	return o
}

// BenchmarkTableI renders the configuration table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TableI() == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTableII computes the synthesis-model hardware comparison.
func BenchmarkTableII(b *testing.B) {
	var res TableIIResult
	for i := 0; i < b.N; i++ {
		res, _ = TableII()
	}
	b.ReportMetric(res.AreaSavingPP, "area-saving-pp")
	b.ReportMetric(res.PowerSavingPP, "power-saving-pp")
}

// BenchmarkTableIII projects the many-core die sizes.
func BenchmarkTableIII(b *testing.B) {
	var rows []DieProjection
	for i := 0; i < b.N; i++ {
		rows, _ = TableIII()
	}
	b.ReportMetric(rows[0].DifferenceMM2(), "polaris-saved-mm2")
	b.ReportMetric(rows[2].DifferenceMM2(), "geforce-saved-mm2")
}

// BenchmarkFig4 measures the serializing-instruction overhead study.
func BenchmarkFig4(b *testing.B) {
	o := benchOpts()
	var res Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanUnSyncPct, "unsync-ovh-pct")
	b.ReportMetric(res.MeanReunionPct, "reunion-ovh-pct")
}

// BenchmarkFig5 sweeps Reunion's FI / comparison latency.
func BenchmarkFig5(b *testing.B) {
	o := benchOpts()
	benches := []trace.Profile{}
	for _, n := range []string{"ammp", "galgel"} {
		p, _ := trace.ByName(n)
		benches = append(benches, p)
	}
	points := []sweep.Pair[int, uint64]{{X: 1, Y: 10}, {X: 15, Y: 25}, {X: 30, Y: 40}}
	var res Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig5(context.Background(), o, benches, points)
		if err != nil {
			b.Fatal(err)
		}
	}
	if last, ok := res.Relative(len(res.Points)-1, "galgel"); ok {
		b.ReportMetric(last, "galgel-rel-at-fi30")
	}
}

// BenchmarkFig6 sweeps the Communication Buffer size.
func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	benches := []trace.Profile{}
	for _, n := range []string{"bzip2", "qsort"} {
		p, _ := trace.ByName(n)
		benches = append(benches, p)
	}
	var res Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(context.Background(), o, benches, []int{2, 10, 170})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanRelative(0), "rel-at-2-entries")
	b.ReportMetric(res.MeanRelative(len(res.Points)-1), "rel-at-2KB")
}

// BenchmarkSERSweep runs the soft-error-rate study.
func BenchmarkSERSweep(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = o.Benchmarks[:2]
	var res SERResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = SERSweep(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BreakEvenSER, "break-even-ser")
	b.ReportMetric(res.ErrorFreeUnSync/res.ErrorFreeReunion, "unsync-speedup")
}

// BenchmarkROEC runs the coverage study's functional campaigns.
func BenchmarkROEC(b *testing.B) {
	var res ROECResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ROEC(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.UnSyncCampaign.CorrectRate(), "unsync-correct-pct")
	b.ReportMetric(100*res.ReunionPersistent.CorrectRate(), "reunion-persistent-correct-pct")
}

// ---- simulator microbenchmarks ----
//
// The four kernels live in internal/benchkit so that these benchmarks
// and `unsync-bench -json` (which writes BENCH.json in CI) measure the
// same code. Names are stable: CI selects them by regex.

// BenchmarkBaselineCore measures raw single-core simulation speed.
func BenchmarkBaselineCore(b *testing.B) { benchkit.BaselineCore(b) }

// BenchmarkUnSyncPair measures redundant-pair simulation speed.
func BenchmarkUnSyncPair(b *testing.B) { benchkit.UnSyncPair(b) }

// BenchmarkReunionPair measures fingerprinted-pair simulation speed.
func BenchmarkReunionPair(b *testing.B) { benchkit.ReunionPair(b) }

// BenchmarkTraceGenerator measures workload-generation throughput.
func BenchmarkTraceGenerator(b *testing.B) { benchkit.TraceGenerator(b) }

// BenchmarkEmulator measures functional-emulation throughput.
func BenchmarkEmulator(b *testing.B) {
	prog, err := Assemble(`
	loop:
		addi r1, r1, 1
		mul r2, r1, r1
		xor r3, r2, r1
		blt r1, r4, loop
		halt
	`)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine(prog)
	m.Regs[4] = ^uint64(0) >> 1 // effectively endless
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "emu-insts/s")
}
