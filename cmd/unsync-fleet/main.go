// Command unsync-fleet coordinates a distributed fault-injection
// campaign (internal/fabric): it splits the trial space into leased
// shard ranges, dispatches them to unsync-serve -worker nodes, absorbs
// worker failures by re-leasing from the last received record, and
// merges the streamed-back records into one aggregate result that is
// bit-identical to a single-node unsync-fault run of the same flags.
//
// Usage:
//
//	unsync-fleet -workers url[,url...] [flags]
//
//	-workers urls   comma-separated worker base URLs (required), e.g.
//	                http://10.0.0.7:8321 — each running
//	                unsync-serve -worker
//	-prog name      workload: a library program name or a path to an
//	                assembly .s file (default "checksum")
//	-scheme string  recovery scheme: unsync or reunion (default "unsync")
//	-n int          number of injection trials (default 100)
//	-seed uint      campaign seed (default 1)
//	-spaces string  comma-separated fault spaces: int-reg,fp-reg,pc,mem,cb
//	                (default: all)
//	-fi int         Reunion fingerprint interval (default 10)
//	-max-steps      golden-run step bound (default 1000000)
//	-step-budget    per-trial watchdog budget (0 = 4×max-steps)
//	-node-workers n per-node worker pool size forwarded to each worker
//	                (0 = the node's NumCPU)
//	-shards n       static shard count (default 4 per worker)
//	-min-steal n    smallest remainder worth re-splitting (default 8)
//	-shard-attempts n  lease attempts per shard before aborting (default 16)
//	-lease-timeout d   heartbeat deadline on a silent shard stream
//	                   (default 60s)
//	-journal path   coordinator journal: fsync'd lease events plus every
//	                received trial record (default "unsync-fleet.jsonl")
//	-resume         replay -journal before dispatching; received trials
//	                and completed shards never re-run
//	-merged path    write the merged canonical journal: trial records in
//	                index order, byte-identical to a single-node
//	                -workers 1 checkpoint ("" disables)
//	-json path      also write the campaign result as JSON ("-" = stdout)
//	-stop-after n   abort after n newly received records (exit 3) — the
//	                deterministic stand-in for a coordinator kill
//	-metrics addr   serve coordinator gauges on addr/metrics ("" disables)
//	-progress       print a live convergence readout to stderr: records
//	                received, windowed SDC rate, Wilson-CI width and DLQ
//	                depth. Purely observational; on -resume the replayed
//	                records stream through it first, so the readout
//	                starts from the campaign's real state
//	-dlq path       dead-letter sidecar: retry-exhausted and malformed
//	                records stream-merged from every shard append there
//	                as JSONL with the full per-attempt error chain. The
//	                sidecar replays on open, so a restarted coordinator
//	                never duplicates an entry
//
// Exit status: 0 on a completed campaign, 1 on a hard failure, 2 on a
// completed campaign with failed trials OR a nonempty DLQ, 3 when
// -stop-after, SIGINT or SIGTERM interrupted the run (the journal holds
// every received trial; -resume completes the campaign without
// re-running them).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fabric"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/progs"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/serve"
	"github.com/cmlasu/unsync/internal/stream"
)

func main() {
	workers := flag.String("workers", "", "comma-separated worker base URLs (required)")
	progName := flag.String("prog", "checksum", "library program name or .s file path")
	scheme := flag.String("scheme", campaign.SchemeUnSync, "recovery scheme: unsync or reunion")
	n := flag.Int("n", 100, "number of injection trials")
	seed := flag.Uint64("seed", 1, "campaign seed")
	spaces := flag.String("spaces", "", "comma-separated fault spaces (default all): int-reg,fp-reg,pc,mem,cb")
	fi := flag.Int("fi", 10, "Reunion fingerprint interval")
	maxSteps := flag.Uint64("max-steps", 1_000_000, "golden-run step bound")
	stepBudget := flag.Uint64("step-budget", 0, "per-trial watchdog budget (0 = 4×max-steps)")
	nodeWorkers := flag.Int("node-workers", 0, "per-node worker pool size (0 = node NumCPU)")
	shards := flag.Int("shards", 0, "static shard count (0 = 4 per worker)")
	minSteal := flag.Int("min-steal", 0, "smallest remainder worth re-splitting (0 = 8)")
	shardAttempts := flag.Int("shard-attempts", 0, "lease attempts per shard before aborting (0 = 16)")
	leaseTimeout := flag.Duration("lease-timeout", 60*time.Second, "heartbeat deadline on a silent shard stream")
	journal := flag.String("journal", "unsync-fleet.jsonl", "coordinator journal path")
	resume := flag.Bool("resume", false, "replay -journal before dispatching")
	merged := flag.String("merged", "", "merged canonical journal output path")
	jsonOut := flag.String("json", "", "also write the result as JSON (\"-\" = stdout)")
	stopAfter := flag.Int("stop-after", 0, "abort after n newly received records (exit 3)")
	metricsAddr := flag.String("metrics", "", "serve coordinator /metrics on this address")
	progress := flag.Bool("progress", false, "print a live convergence readout to stderr")
	dlqPath := flag.String("dlq", "", "dead-letter sidecar path for retry-exhausted/malformed records (exit 2 when nonempty)")
	flag.Parse()

	if *workers == "" {
		fatal(errors.New("no -workers configured"))
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
			urls = append(urls, u)
		}
	}

	params := serve.CampaignParams{
		Scheme:     *scheme,
		Trials:     *n,
		Seed:       *seed,
		FI:         *fi,
		MaxSteps:   *maxSteps,
		StepBudget: *stepBudget,
		Workers:    *nodeWorkers,
	}
	if *spaces != "" {
		params.Spaces = strings.Split(*spaces, ",")
	}
	if p, ok := progs.ByName(*progName); ok {
		params.Prog = p.Name
	} else {
		src, err := os.ReadFile(*progName)
		if err != nil {
			fatal(fmt.Errorf("%q is neither a library program nor a readable file: %w", *progName, err))
		}
		params.Source = string(src)
	}

	// The streaming plane observes the merged record stream from every
	// shard — live arrivals, steal-overlap duplicates and journal
	// replays alike — feeding the -progress readout and the dead-letter
	// sidecar. Strictly observational: the merged Result and journal
	// bytes are identical with or without it.
	var plane *stream.Plane
	var progressDone sync.WaitGroup
	if *progress || *dlqPath != "" {
		prog, perr := params.Program()
		if perr != nil {
			fatal(perr)
		}
		plane, perr = stream.NewPlane(stream.PlaneConfig{
			DLQ:       *dlqPath,
			Key:       params.Spec().Normalized().Key(campaign.ProgHash(prog)),
			EmitEvery: 200 * time.Millisecond,
		})
		if perr != nil {
			fatal(perr)
		}
		if *progress {
			tap := plane.Subscribe(8)
			progressDone.Add(1)
			go func() {
				defer progressDone.Done()
				// Ranges until plane.Close delivers the final frame; a
				// slow terminal sheds frames, never stalls the merge.
				for fr := range tap.C {
					fmt.Fprintf(os.Stderr, "progress: %s\n", stream.FormatFrame(fr))
				}
			}()
		}
	}

	coord, err := fabric.New(fabric.Config{
		Workers:       urls,
		Params:        params,
		Journal:       *journal,
		Resume:        *resume,
		Merged:        *merged,
		Shards:        *shards,
		MinSteal:      *minSteal,
		ShardAttempts: *shardAttempts,
		LeaseTimeout:  *leaseTimeout,
		StopAfter:     *stopAfter,
		Log:           os.Stderr,
		Plane:         plane,
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeMetrics(w, coord.Snapshot(), plane)
		})
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		// Detached like the unsync-serve acceptor: the process exits with
		// the campaign and takes the listener with it.
		//unsync:allow-goroutine metrics listener lives for the process lifetime; exits with main
		go func() { _ = msrv.ListenAndServe() }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := coord.Run(ctx)
	if cerr := plane.Close(); cerr != nil {
		// A determinism violation or a dead-letter write failure must
		// not vanish just because every trial classified.
		fmt.Fprintf(os.Stderr, "unsync-fleet: streaming plane: %v\n", cerr)
		if err == nil {
			err = cerr
		}
	}
	progressDone.Wait()
	interrupted := errors.Is(err, campaign.ErrInterrupted)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "unsync-fleet: %v\n", err)
		os.Exit(3)
	}

	fmt.Print(render(res, coord.Snapshot()).Text())
	if *jsonOut != "" {
		if werr := writeJSON(*jsonOut, res); werr != nil {
			fatal(werr)
		}
	}
	if res.Failed > 0 || plane.DLQDepth() > 0 {
		os.Exit(2)
	}
}

// render lays the merged campaign result out exactly like unsync-fault,
// plus a fleet note: leases, re-leases, steals and duplicate records.
func render(res campaign.Result, snap fabric.Snapshot) *report.Table {
	t := report.New(fmt.Sprintf("Fleet campaign — %s (prog %s, seed %d)", res.Scheme, res.Prog, res.Seed),
		"Space", "Trials", "Benign", "Recovered", "Unrec", "Hang", "SDC")
	row := func(name string, c fault.CampaignResult) {
		t.Row(name, report.I(uint64(c.Trials)), report.I(uint64(c.Benign)),
			report.I(uint64(c.Recovered)), report.I(uint64(c.Unrecoverable)),
			report.I(uint64(c.Hangs)), report.I(uint64(c.SDC)))
	}
	row("all", res.Tally)
	names := make([]string, 0, len(res.BySpace))
	for name := range res.BySpace {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name, res.BySpace[name])
	}
	t.Note("ran %d/%d trials (%d failed); SDC rate %.2f%% (95%% CI [%.2f%%, %.2f%%])",
		res.Ran, res.Requested, res.Failed, 100*res.SDCRate, 100*res.SDCLo, 100*res.SDCHi)
	t.Note("fleet: %d shards, %d leases (%d re-leases, %d steals), %d duplicate records deduped",
		snap.Shards, snap.Leases, snap.Failures, snap.Splits, snap.Duplicates)
	return t
}

// writeMetrics renders the coordinator snapshot in the Prometheus text
// exposition format, mirroring the serve-side metric idiom. plane may
// be nil (no -progress/-dlq).
func writeMetrics(w http.ResponseWriter, snap fabric.Snapshot, plane *stream.Plane) {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("unsync_fleet_trials", "Trials in the campaign.", float64(snap.Trials))
	gauge("unsync_fleet_trials_done", "Trial records received and journaled.", float64(snap.Done))
	if plane != nil {
		fr := plane.Snapshot()
		gauge("unsync_fleet_dlq_depth", "Distinct dead-lettered trials in the DLQ sidecar.", float64(fr.DLQDepth))
		gauge("unsync_fleet_window_sdc_rate", "SDC rate over the streaming plane's sliding window.", fr.WindowRate)
	}
	fmt.Fprintf(&b, "# HELP unsync_fleet_shards Shards by lease state.\n# TYPE unsync_fleet_shards gauge\n")
	for _, st := range []string{"pending", "running", "done"} {
		fmt.Fprintf(&b, "unsync_fleet_shards{state=%q} %d\n", st, snap.ShardsByState[st])
	}
	counter("unsync_fleet_leases_total", "Shard leases granted since start.", snap.Leases)
	counter("unsync_fleet_lease_failures_total", "Leases that failed and re-pended their range.", snap.Failures)
	counter("unsync_fleet_steals_total", "Straggler ranges re-split by idle workers.", snap.Splits)
	counter("unsync_fleet_duplicate_records_total", "Bit-identical duplicate records deduped on arrival.", snap.Duplicates)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func writeJSON(path string, res campaign.Result) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unsync-fleet: %v\n", err)
	os.Exit(1)
}
