// Command unsync-hw prints the hardware synthesis model: the Table II
// area/power comparison, the Table III die-size projections, and
// what-if sweeps (CHECK Stage Buffer growth with the fingerprint
// interval, Communication Buffer sizing).
//
// Usage:
//
//	unsync-hw [-format text|csv|markdown] [-fisweep] [-cbsweep]
package main

import (
	"flag"
	"fmt"

	unsync "github.com/cmlasu/unsync"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/report"
)

func main() {
	format := flag.String("format", "text", "output format: text, csv, markdown")
	fiSweep := flag.Bool("fisweep", true, "print the CSB-vs-FI growth sweep")
	cbSweep := flag.Bool("cbsweep", true, "print the CB sizing sweep")
	blocks := flag.Bool("blocks", false, "print per-block core breakdowns")
	flag.Parse()

	render := func(t *unsync.Table) {
		switch *format {
		case "csv":
			fmt.Print(t.CSV())
		case "markdown":
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.Text())
		}
		fmt.Println()
	}

	_, t2 := unsync.TableII()
	render(t2)
	_, t3 := unsync.TableIII()
	render(t3)

	if *blocks {
		for _, m := range []hwmodel.CoreModel{
			hwmodel.BaselineMIPSCore(), hwmodel.UnSyncCore(), hwmodel.ReunionCore(10),
		} {
			t := report.New(fmt.Sprintf("Core block breakdown — %s (total %.0f um^2, %.0f mW)",
				m.Name, m.AreaUM2(), m.PowerMW()),
				"Block", "Kind", "Area (um^2)", "Power (mW)")
			for _, b := range m.Blocks {
				t.Row(b.Name, b.Kind.String(), report.F(b.AreaUM2, 0), report.F(b.PowerMW, 1))
			}
			render(t)
		}
	}

	if *fiSweep {
		t := report.New("CHECK Stage Buffer growth with fingerprint interval (§IV-A3)",
			"FI", "CSB entries", "CSB area (um^2)", "Reunion core (um^2)", "vs 42818 um^2 small core")
		for _, fi := range []int{1, 5, 10, 20, 30, 40, 50} {
			csb := hwmodel.CSBAreaUM2(fi)
			t.Row(
				report.I(uint64(fi)),
				report.I(uint64(hwmodel.CSBEntries(fi))),
				report.F(csb, 0),
				report.F(hwmodel.ReunionCore(fi).AreaUM2(), 0),
				report.Pct(100*csb/42818))
		}
		t.Note("paper: at FI=50 the CSB alone occupies 39125 um^2, 91%% of a small MIPS core")
		render(t)
	}

	if *cbSweep {
		t := report.New("Communication Buffer sizing",
			"Entries", "Bytes", "Area (um^2)", "Power (mW)")
		for _, n := range []int{5, 10, 21, 42, 85, 170, 341} {
			t.Row(report.I(uint64(n)), report.I(uint64(n*12)),
				report.F(hwmodel.CBAreaUM2(n), 0), report.F(hwmodel.CBPowerMW(n), 3))
		}
		t.Note("Table II prices the synthesized 10-entry point: 0.00387 mm^2, 0.77258 mW")
		render(t)
	}
}
