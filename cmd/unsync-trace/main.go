// Command unsync-trace inspects the synthetic benchmark workloads: it
// dumps dynamic instruction records or summarizes a stream's measured
// characteristics against its profile.
//
// Usage:
//
//	unsync-trace -bench sha -n 20            # dump 20 records
//	unsync-trace -bench sha -summary -n 100000
//	unsync-trace -bench sha -n 100000 -o sha.trace   # binary export
//	unsync-trace -i sha.trace -summary              # read it back
//	unsync-trace -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/trace"
)

func main() {
	bench := flag.String("bench", "bzip2", "benchmark name")
	n := flag.Int("n", 20, "records to generate")
	summary := flag.Bool("summary", false, "print a stream summary instead of records")
	list := flag.Bool("list", false, "list available benchmarks")
	outFile := flag.String("o", "", "write the records as a binary trace file")
	inFile := flag.String("i", "", "read records from a binary trace file instead of generating")
	flag.Parse()

	if *list {
		for _, p := range trace.Benchmarks() {
			fmt.Printf("%-10s %s\n", p.Name, p.Suite)
		}
		return
	}

	p, ok := trace.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unsync-trace: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	var recs []trace.Record
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-trace: %v\n", err)
			os.Exit(1)
		}
		recs, err = trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-trace: %v\n", err)
			os.Exit(1)
		}
		if *n > 0 && *n < len(recs) {
			recs = recs[:*n]
		}
	} else {
		recs = trace.Collect(trace.NewGenerator(p), *n)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-trace: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteTrace(f, recs); err != nil {
			fmt.Fprintf(os.Stderr, "unsync-trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d records to %s\n", len(recs), *outFile)
		return
	}

	if !*summary {
		for _, r := range recs {
			fmt.Println(r)
		}
		return
	}

	mix := trace.MixOf(recs)
	classes := make([]isa.Class, 0, len(mix))
	for c := range mix {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	if *inFile != "" {
		fmt.Printf("trace file %s, %d records\n", *inFile, len(recs))
	} else {
		fmt.Printf("benchmark %s (%s), %d records\n", p.Name, p.Suite, len(recs))
		fmt.Printf("profile: ws=%dKB stream=%.2f hot=%.2f reuse=%.2f chain=%.2f dep=%.1f pool=%d\n",
			p.WorkingSet>>10, p.MemStreamFrac, p.MemHotFrac, p.MemReuseFrac,
			p.ChainFrac, p.DepMean, p.RegPool)
	}
	fmt.Println("measured class mix:")
	for _, c := range classes {
		fmt.Printf("  %-8v %6.2f%%\n", c, 100*mix[c])
	}
	var ser, taken, branches float64
	for _, r := range recs {
		if r.Serializing() {
			ser++
		}
		if r.Class == isa.ClassBranch {
			branches++
			if r.Taken {
				taken++
			}
		}
	}
	fmt.Printf("serializing: %.3f%% (profile %.3f%%)\n",
		100*ser/float64(len(recs)), 100*p.Mix.SerializingFrac())
	if branches > 0 {
		fmt.Printf("branch taken rate: %.1f%%\n", 100*taken/branches)
	}
}
