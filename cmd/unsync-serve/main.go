// Command unsync-serve runs the campaign job service: an HTTP API that
// accepts fault-injection campaign and figure-experiment jobs as JSON,
// runs them on a bounded worker pool with per-job deadlines, sheds
// load with 429 Retry-After when the admission queue fills, and drains
// gracefully on SIGTERM — in-flight campaigns flush their checkpoint
// journals and a restarted server resumes them bit-identically.
//
// Usage:
//
//	unsync-serve [flags]
//
//	-addr string        listen address (default ":8321")
//	-state dir          state directory: jobs journal + campaign
//	                    checkpoints (default "unsync-serve-state")
//	-max-concurrent n   jobs running at once (default 2)
//	-queue-depth n      admitted jobs waiting for a slot (default 8)
//	-default-deadline d per-job deadline when the request sets none
//	                    (default 10m)
//	-max-deadline d     upper clamp on requested deadlines (default 1h)
//	-drain-timeout d    how long SIGTERM waits for in-flight jobs to
//	                    checkpoint before exiting anyway (default 30s)
//	-worker             enable fleet worker mode: mount the shard
//	                    execution endpoint so an unsync-fleet
//	                    coordinator can lease trial ranges to this node
//
// API:
//
//	POST /api/v1/jobs        submit a job; 202 + job JSON, or 429 with
//	                         Retry-After under overload
//	GET  /api/v1/jobs        list jobs
//	GET  /api/v1/jobs/{id}   one job's state and result
//	POST /api/v1/shards      (-worker only) execute one leased campaign
//	                         trial range, streaming its records back as
//	                         per-record-flushed JSONL; 409 on a params
//	                         key mismatch, 429 under overload
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining or when the
//	                         runner circuit is open)
//	GET  /metrics            Prometheus text exposition: serve gauges
//	                         (in-flight jobs, queue depth, shed total,
//	                         breaker state, jobs by state) plus one
//	                         unsync_job_event_total{job,event} counter
//	                         per taxonomy event of each completed job,
//	                         and in -worker mode the shard gauges
//	                         (active/total/trials/failures)
//
// Exit status: 0 after a clean drain, 1 on startup or serve failure,
// 2 when the drain timed out with jobs still in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cmlasu/unsync/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	state := flag.String("state", "unsync-serve-state", "state directory (jobs journal + checkpoints)")
	maxConcurrent := flag.Int("max-concurrent", 2, "jobs running at once")
	queueDepth := flag.Int("queue-depth", 8, "admitted jobs waiting for a worker slot")
	defaultDeadline := flag.Duration("default-deadline", 10*time.Minute, "per-job deadline when the request sets none")
	maxDeadline := flag.Duration("max-deadline", time.Hour, "upper clamp on requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain budget")
	worker := flag.Bool("worker", false, "fleet worker mode: mount the shard execution endpoint")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		StateDir:        *state,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		EnableShards:    *worker,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	// The acceptor goroutine is deliberately detached: ListenAndServe
	// returns (ErrServerClosed) when Shutdown below closes the listener,
	// and the buffered channel makes its final send non-blocking, so the
	// goroutine cannot outlive process teardown in a way that matters.
	//unsync:allow-goroutine acceptor exits when Shutdown closes the listener; buffered send cannot block
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "unsync-serve: listening on %s (state %s)\n", *addr, *state)

	select {
	case err := <-serveErr:
		fatal(err)
	case <-sigCtx.Done():
	}

	// Graceful shutdown: stop accepting HTTP, then cancel in-flight
	// jobs and wait for them to journal their interrupted state. The
	// campaign checkpoints are flushed per trial, so even a cut-short
	// drain loses no completed trial.
	fmt.Fprintln(os.Stderr, "unsync-serve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "unsync-serve: http shutdown: %v\n", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "unsync-serve: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "unsync-serve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unsync-serve: %v\n", err)
	os.Exit(1)
}
