// Command unsync-lint enforces the repository's determinism invariants
// (see internal/lint): no math/rand or wall-clock reads in the
// simulator packages, no order-sensitive map iteration, no discarded
// simulator errors, and no panics reachable from the public unsync API
// outside audited //unsync:allow-panic sites.
//
// Usage:
//
//	unsync-lint ./...          # lint the module containing the cwd
//	unsync-lint -C path ./...  # lint the module rooted at path
//
// Package patterns are accepted for familiarity but the analysis is
// always whole-module: the panic-reachability rule needs every package.
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cmlasu/unsync/internal/lint"
)

func main() {
	dir := flag.String("C", "", "module root to lint (default: locate go.mod above the cwd)")
	flag.Parse()

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-lint: %v\n", err)
			os.Exit(2)
		}
	}

	findings, err := lint.Run(lint.DefaultConfig(root))
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "unsync-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
