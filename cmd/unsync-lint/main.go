// Command unsync-lint enforces the repository's determinism and
// concurrency-safety invariants (see internal/lint): no math/rand or
// wall-clock reads in the simulator packages, no order-sensitive map
// iteration, no discarded simulator errors, no panics reachable from
// the public unsync API, no unjoinable goroutines, no dropped contexts
// where a *Context variant exists, no blocking operations under a held
// mutex, and no stale or unjustified //unsync:allow-* directives.
//
// Usage:
//
//	unsync-lint ./...          # lint the module containing the cwd
//	unsync-lint -C path ./...  # lint the module rooted at path
//	unsync-lint -json ./...    # one JSON object per finding on stdout
//
// Package patterns are accepted for familiarity but the analysis is
// always whole-module: the interprocedural rules need every package.
//
// Output contract: findings go to stdout, one per line, sorted by
// (file, line, rule). With -json each line is one object of the form
// {"file","line","col","rule","msg"}; without it each line is
// file:line:col: rule: message. Exit status is part of the contract:
//
//	0  clean — no findings
//	1  findings were reported (count echoed on stderr)
//	2  load or usage error (nothing analyzable; diagnostics on stderr)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cmlasu/unsync/internal/lint"
)

func main() {
	dir := flag.String("C", "", "module root to lint (default: locate go.mod above the cwd)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	flag.Parse()

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-lint: %v\n", err)
			os.Exit(2)
		}
	}

	findings, err := lint.Run(lint.DefaultConfig(root))
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "unsync-lint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "unsync-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
