// Command unsync-sim runs one benchmark on one architecture and prints
// detailed statistics.
//
// Usage:
//
//	unsync-sim [flags]
//
//	-bench string    benchmark name (default "bzip2"); "list" lists all
//	-scheme string   baseline, unsync or reunion (default "unsync")
//	-insts uint      measured instructions (default 200000)
//	-warmup uint     warmup instructions (default 50000)
//	-cb int          UnSync Communication Buffer entries (default 170)
//	-fi int          Reunion fingerprint interval (default 10)
//	-cmplat uint     Reunion comparison latency (default 6)
package main

import (
	"flag"
	"fmt"
	"os"

	unsync "github.com/cmlasu/unsync"
)

func main() {
	bench := flag.String("bench", "bzip2", "benchmark name, or 'list'")
	scheme := flag.String("scheme", "unsync", "baseline | unsync | reunion")
	insts := flag.Uint64("insts", 200_000, "measured instructions")
	warmup := flag.Uint64("warmup", 50_000, "warmup instructions")
	cb := flag.Int("cb", 0, "UnSync CB entries (0 = default)")
	fi := flag.Int("fi", 0, "Reunion fingerprint interval (0 = default)")
	cmplat := flag.Uint64("cmplat", 0, "Reunion comparison latency (0 = default)")
	flag.Parse()

	if *bench == "list" {
		for _, p := range unsync.Benchmarks() {
			fmt.Printf("%-10s %-9s serializing=%.2f%% ws=%dKB\n",
				p.Name, p.Suite, 100*p.Mix.SerializingFrac(), p.WorkingSet>>10)
		}
		return
	}

	var s unsync.Scheme
	switch *scheme {
	case "baseline":
		s = unsync.SchemeBaseline
	case "unsync":
		s = unsync.SchemeUnSync
	case "reunion":
		s = unsync.SchemeReunion
	default:
		fmt.Fprintf(os.Stderr, "unsync-sim: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	rc := unsync.DefaultRunConfig()
	rc.MeasureInsts = *insts
	rc.WarmupInsts = *warmup
	if *cb > 0 {
		rc.UnSync.CBEntries = *cb
	}
	if *fi > 0 {
		rc.Reunion.FI = *fi
	}
	if *cmplat > 0 {
		rc.Reunion.CompareLatency = *cmplat
	}

	res, err := unsync.Run(s, rc, *bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-sim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark:   %s (%s)\n", res.Benchmark, res.Scheme)
	fmt.Printf("instructions %d over %d cycles\n", res.Insts, res.Cycles)
	fmt.Printf("IPC:         %.4f\n", res.IPC)
	c := res.Core
	fmt.Printf("loads/stores %d / %d\n", c.Loads, c.Stores)
	fmt.Printf("branches:    %d (%d mispredicted)\n", c.Branches, c.Mispredicts)
	fmt.Printf("serializing: %d\n", c.Serializing)
	fmt.Printf("commit stalls: empty=%d exec=%d scheme-gate=%d\n",
		c.StallEmpty, c.StallExec, c.StallGate)
	fmt.Printf("dispatch stalls: rob=%d iq=%d lsq=%d\n",
		c.DispatchStallROB, c.DispatchStallIQ, c.DispatchStallLSQ)
	fmt.Printf("ROB occupancy: mean %.1f peak %d\n", c.ROBOcc.Mean(), c.ROBOcc.Peak())

	if st := res.UnSyncStats; st != nil {
		fmt.Printf("CB: drained=%d, full-stall cycles=%d/%d, occupancy mean %.1f\n",
			st.Drained, st.CBFullStall[0], st.CBFullStall[1], st.CBOcc[0].Mean())
	}
	if st := res.ReunionStats; st != nil {
		fmt.Printf("fingerprints=%d mismatches=%d, CSB-full stalls=%d, serialize stalls=%d\n",
			st.Fingerprints, st.Mismatches, st.CSBFullStall[0], st.SerializeStall[0])
		fmt.Printf("CSB occupancy mean %.1f\n", st.CSBOcc[0].Mean())
	}
}
