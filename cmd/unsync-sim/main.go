// Command unsync-sim runs one benchmark on one architecture and prints
// detailed statistics.
//
// Usage:
//
//	unsync-sim [flags]
//
//	-bench string    benchmark name (default "bzip2"); "list" lists all
//	-scheme string   baseline, unsync, reunion or tmr (default "unsync")
//	-insts uint      measured instructions (default 200000)
//	-warmup uint     warmup instructions (default 50000)
//	-cb int          UnSync/TMR Communication Buffer entries (default 170)
//	-fi int          Reunion fingerprint interval (default 10)
//	-cmplat uint     Reunion comparison latency (default 6)
//	-ser float       soft-error rate in errors/instruction (default 0: none)
//	-seed uint       Poisson arrival seed for -ser (default 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	unsync "github.com/cmlasu/unsync"
)

func schemeNames() string {
	var names []string
	for _, s := range unsync.Schemes() {
		names = append(names, s.String())
	}
	return strings.Join(names, " | ")
}

func main() {
	bench := flag.String("bench", "bzip2", "benchmark name, or 'list'")
	scheme := flag.String("scheme", "unsync", schemeNames())
	insts := flag.Uint64("insts", 200_000, "measured instructions")
	warmup := flag.Uint64("warmup", 50_000, "warmup instructions")
	cb := flag.Int("cb", 0, "UnSync/TMR CB entries (0 = default)")
	fi := flag.Int("fi", 0, "Reunion fingerprint interval (0 = default)")
	cmplat := flag.Uint64("cmplat", 0, "Reunion comparison latency (0 = default)")
	ser := flag.Float64("ser", 0, "soft-error rate, errors/instruction (0 = error-free)")
	seed := flag.Uint64("seed", 1, "Poisson arrival seed for -ser")
	flag.Parse()

	if *bench == "list" {
		for _, p := range unsync.Benchmarks() {
			fmt.Printf("%-10s %-9s serializing=%.2f%% ws=%dKB\n",
				p.Name, p.Suite, 100*p.Mix.SerializingFrac(), p.WorkingSet>>10)
		}
		return
	}

	// The scheme registry decides what is runnable; an unknown name is
	// rejected by Run with the registered list in the error.
	s := unsync.Scheme(*scheme)

	rc := unsync.DefaultRunConfig()
	rc.MeasureInsts = *insts
	rc.WarmupInsts = *warmup
	if *cb > 0 {
		rc.UnSync.CBEntries = *cb
		rc.TMR.CBEntries = *cb
	}
	if *fi > 0 {
		rc.Reunion.FI = *fi
	}
	if *cmplat > 0 {
		rc.Reunion.CompareLatency = *cmplat
	}

	var plan unsync.FaultPlan
	if *ser > 0 {
		plan = unsync.FaultPlan{SER: unsync.SER{PerInst: *ser}, Seed: *seed}
	}
	res, err := unsync.RunWithFaults(s, rc, *bench, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-sim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark:   %s (%s)\n", res.Benchmark, res.Scheme)
	if *ser > 0 {
		fmt.Printf("soft errors: %s errors/instruction (seed %d)\n",
			fmt.Sprintf("%.2e", *ser), *seed)
	}
	fmt.Printf("instructions %d over %d cycles\n", res.Insts, res.Cycles)
	fmt.Printf("IPC:         %.4f\n", res.IPC)
	c := res.Core
	fmt.Printf("loads/stores %d / %d\n", c.Loads, c.Stores)
	fmt.Printf("branches:    %d (%d mispredicted)\n", c.Branches, c.Mispredicts)
	fmt.Printf("serializing: %d\n", c.Serializing)
	fmt.Printf("commit stalls: empty=%d exec=%d scheme-gate=%d\n",
		c.StallEmpty, c.StallExec, c.StallGate)
	fmt.Printf("dispatch stalls: rob=%d iq=%d lsq=%d\n",
		c.DispatchStallROB, c.DispatchStallIQ, c.DispatchStallLSQ)
	fmt.Printf("ROB occupancy: mean %.1f peak %d\n", c.ROBOcc.Mean(), c.ROBOcc.Peak())

	if st := res.UnSyncStats; st != nil {
		fmt.Printf("CB: drained=%d, full-stall cycles=%d/%d, occupancy mean %.1f\n",
			st.Drained, st.CBFullStall[0], st.CBFullStall[1], st.CBOcc[0].Mean())
		fmt.Printf("recoveries=%d (%d stall cycles)\n", st.Recoveries, st.RecoveryCycles)
	}
	if st := res.ReunionStats; st != nil {
		fmt.Printf("fingerprints=%d mismatches=%d, CSB-full stalls=%d, serialize stalls=%d\n",
			st.Fingerprints, st.Mismatches, st.CSBFullStall[0], st.SerializeStall[0])
		fmt.Printf("CSB occupancy mean %.1f\n", st.CSBOcc[0].Mean())
	}
	if st := res.TMRStats; st != nil {
		fmt.Printf("TMR: voted-drains=%d maskings=%d resyncs=%d (%d resync cycles)\n",
			st.Drained, st.Maskings, st.Resyncs, st.ResyncCycles)
		fmt.Printf("CB full-stall cycles: %d/%d/%d, occupancy mean %.1f\n",
			st.CBFullStall[0], st.CBFullStall[1], st.CBFullStall[2], st.CBOcc[0].Mean())
	}
}
