// Command unsync-fault runs a resilient fault-injection campaign
// (internal/campaign) against one workload and reports the per-outcome
// tally, the per-space split and the SDC rate with its Wilson interval.
//
// Usage:
//
//	unsync-fault [flags]
//
//	-prog name      workload: a library program name (bubblesort, matmul,
//	                sieve, gcd, fibonacci, checksum) or a path to an
//	                assembly .s file (default "checksum")
//	-scheme string  recovery scheme: unsync or reunion (default "unsync")
//	-n int          number of injection trials (default 100)
//	-seed uint      campaign seed (default 1)
//	-spaces string  comma-separated fault spaces to draw from:
//	                int-reg,fp-reg,pc,mem,cb (default: all)
//	-fi int         Reunion fingerprint interval (default 10)
//	-max-steps      golden-run step bound (default 1000000)
//	-step-budget    per-trial watchdog budget (default 4×max-steps)
//	-workers int    worker pool size (0 = NumCPU)
//	-batch int      lane width of the batched trial engine: workers claim
//	                trials in groups of up to this many lanes and classify
//	                them against the shared golden run in one kernel call.
//	                Outcomes, journals and the final result are
//	                bit-identical across widths; -batch 1 selects the
//	                scalar reference path (default 32)
//	-ci-width f     stop early once the Wilson 95% CI on the SDC rate is
//	                narrower than f (0 disables)
//	-checkpoint p   JSONL trial journal path ("" disables journaling)
//	-resume         load completed trials from -checkpoint before running
//	-stop-after n   abort after n newly executed trials (exit 3) — a
//	                deterministic stand-in for a mid-campaign kill, used
//	                by the CI kill+resume exercise
//	-json path      also write the campaign result as JSON ("-" = stdout)
//	-progress       print a live convergence readout to stderr: trials
//	                done, windowed SDC rate, Wilson-CI width and DLQ
//	                depth. Purely observational — early stopping still
//	                evaluates only at fixed round boundaries (-ci-width),
//	                never off this readout
//	-dlq path       dead-letter sidecar: retry-exhausted and malformed
//	                trials append there as JSONL entries carrying the
//	                full per-attempt error chain; re-running with the
//	                same sidecar never duplicates an entry
//
// Exit status: 0 on a completed campaign, 1 on a hard failure, 2 on a
// completed campaign with failed trials OR a nonempty DLQ, 3 when
// -stop-after, SIGINT or SIGTERM interrupted the run (the partial
// result is still reported and journaled, so -resume picks up where
// the interrupt landed).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/progs"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stream"
)

func main() {
	progName := flag.String("prog", "checksum", "library program name or .s file path")
	scheme := flag.String("scheme", campaign.SchemeUnSync, "recovery scheme: unsync or reunion")
	n := flag.Int("n", 100, "number of injection trials")
	seed := flag.Uint64("seed", 1, "campaign seed")
	spaces := flag.String("spaces", "", "comma-separated fault spaces (default all): int-reg,fp-reg,pc,mem,cb")
	fi := flag.Int("fi", 10, "Reunion fingerprint interval")
	maxSteps := flag.Uint64("max-steps", 1_000_000, "golden-run step bound")
	stepBudget := flag.Uint64("step-budget", 0, "per-trial watchdog budget (0 = 4×max-steps)")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	batch := flag.Int("batch", campaign.DefaultBatch, "trial-engine lane width (1 = scalar path)")
	ciWidth := flag.Float64("ci-width", 0, "early-stop Wilson CI width on the SDC rate (0 disables)")
	checkpoint := flag.String("checkpoint", "", "JSONL trial journal path")
	resume := flag.Bool("resume", false, "load completed trials from -checkpoint")
	stopAfter := flag.Int("stop-after", 0, "abort after n newly executed trials (exit 3)")
	jsonOut := flag.String("json", "", "also write the result as JSON (\"-\" = stdout)")
	progress := flag.Bool("progress", false, "print a live convergence readout to stderr")
	dlqPath := flag.String("dlq", "", "dead-letter sidecar path for retry-exhausted/malformed trials (exit 2 when nonempty)")
	flag.Parse()

	prog, err := loadProgram(*progName)
	if err != nil {
		fatal(err)
	}
	spec := campaign.Spec{
		Scheme:     *scheme,
		Trials:     *n,
		Seed:       *seed,
		MaxSteps:   *maxSteps,
		StepBudget: *stepBudget,
		FI:         *fi,
		Workers:    *workers,
		CIWidth:    *ciWidth,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		StopAfter:  *stopAfter,
		Batch:      *batch,
		Stats:      &campaign.BatchStats{},
	}
	if *spaces != "" {
		for _, name := range strings.Split(*spaces, ",") {
			sp, ok := fault.SpaceByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown fault space %q (want int-reg, fp-reg, pc, mem or cb)", name))
			}
			spec.Spaces = append(spec.Spaces, sp)
		}
	}

	// The streaming plane is wired in only when asked for: it observes
	// every classified trial, feeds the -progress readout and captures
	// dead letters, and is strictly observational — the Result and
	// checkpoint bytes are bit-identical with or without it.
	var plane *stream.Plane
	var progressDone sync.WaitGroup
	if *progress || *dlqPath != "" {
		key := spec.Normalized().Key(campaign.ProgHash(prog))
		plane, err = stream.NewPlane(stream.PlaneConfig{
			DLQ: *dlqPath,
			Key: key,
			// Throttle the readout; the plane's accounting itself is
			// lossless (Block inlet policy).
			EmitEvery: 200 * time.Millisecond,
		})
		if err != nil {
			fatal(err)
		}
		spec.Observer = plane.Observe
		if *progress {
			tap := plane.Subscribe(8)
			progressDone.Add(1)
			go func() {
				defer progressDone.Done()
				// Ranges until plane.Close delivers the final frame and
				// closes the tap; a slow terminal sheds intermediate
				// frames, never stalls trial execution.
				for fr := range tap.C {
					fmt.Fprintf(os.Stderr, "progress: %s\n", stream.FormatFrame(fr))
				}
			}()
		}
	}

	// SIGINT/SIGTERM cancel the campaign instead of killing it mid-trial:
	// RunContext drains the workers, journals every completed trial and
	// returns the partial result under ErrInterrupted, so a Ctrl-C'd
	// campaign resumes from its checkpoint exactly like a -stop-after one.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := campaign.RunContext(ctx, prog, spec)
	if cerr := plane.Close(); cerr != nil {
		// A determinism violation or a dead-letter write failure must
		// not vanish just because every trial classified.
		fmt.Fprintf(os.Stderr, "unsync-fault: streaming plane: %v\n", cerr)
		if err == nil {
			err = cerr
		}
	}
	progressDone.Wait()
	interrupted := errors.Is(err, campaign.ErrInterrupted)
	if err != nil && !interrupted && res.Ran == 0 {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-fault: %v\n", err)
	}

	fmt.Print(render(res, spec.Stats).Text())
	if *jsonOut != "" {
		if werr := writeJSON(*jsonOut, res); werr != nil {
			fatal(werr)
		}
	}

	switch {
	case interrupted:
		os.Exit(3)
	case res.Failed > 0 || plane.DLQDepth() > 0:
		// A nonempty DLQ means trials were quarantined — possibly by an
		// earlier run of the same sidecar — and someone should look.
		os.Exit(2)
	}
}

// loadProgram resolves the workload: a progs library name, or a path to
// an assembly source file.
func loadProgram(name string) (*asm.Program, error) {
	if p, ok := progs.ByName(name); ok {
		return p.Assemble()
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("unsync-fault: %q is neither a library program nor a readable file: %w", name, err)
	}
	return asm.Assemble(string(src))
}

// render lays the campaign result out as a table: the overall tally
// first, then one row per injected space.
func render(res campaign.Result, stats *campaign.BatchStats) *report.Table {
	t := report.New(fmt.Sprintf("Fault campaign — %s (prog %s, seed %d)", res.Scheme, res.Prog, res.Seed),
		"Space", "Trials", "Benign", "Recovered", "Unrec", "Hang", "SDC")
	row := func(name string, c fault.CampaignResult) {
		t.Row(name, report.I(uint64(c.Trials)), report.I(uint64(c.Benign)),
			report.I(uint64(c.Recovered)), report.I(uint64(c.Unrecoverable)),
			report.I(uint64(c.Hangs)), report.I(uint64(c.SDC)))
	}
	row("all", res.Tally)
	names := make([]string, 0, len(res.BySpace))
	for name := range res.BySpace {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name, res.BySpace[name])
	}
	early := ""
	if res.EarlyStop {
		early = "; stopped early on CI width"
	}
	t.Note("ran %d/%d trials (%d failed); SDC rate %.2f%% (95%% CI [%.2f%%, %.2f%%])%s",
		res.Ran, res.Requested, res.Failed, 100*res.SDCRate, 100*res.SDCLo, 100*res.SDCHi, early)
	if stats != nil && stats.Lanes() > 0 {
		t.Note("batch engine: %d lanes (%d shortcut, %d lockstep, %d retired to scalar — %.1f%%)",
			stats.Lanes(), stats.Shortcut(), stats.Lockstep(), stats.Retired(), 100*stats.RetiredFrac())
	}
	return t
}

func writeJSON(path string, res campaign.Result) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unsync-fault: %v\n", err)
	os.Exit(1)
}
