// Command unsync-bench regenerates every table and figure of the
// paper's evaluation section.
//
// Usage:
//
//	unsync-bench [flags]
//
//	-run string     comma-separated experiments to run:
//	                table1,table2,table3,fig4,fig5,fig6,ser,roec,coverage,
//	                campaign,ablations,extensions,replicated,all
//	                (default "all"). "campaign" measures fault-campaign
//	                throughput through the batched lane engine against the
//	                scalar reference path
//	-format string  output format: text, csv or markdown (default "text")
//	-quick          scaled-down windows and benchmark subset
//	-workers int    parallel simulation workers (default NumCPU)
//	-trials int     functional injection trials per ROEC campaign (default 40)
//	-events         run the hardware-counter event study: a topdown slot
//	                decomposition plus per-event counts and deltas vs the
//	                baseline for every scheme; included in the -json report
//	-json           also run the benchkit kernels and write a machine-readable
//	                report (see -benchout) with ns/op, allocs/op, simulated
//	                cycles/s per kernel and wall time per figure
//	-benchout path  report path for -json (default "BENCH.json")
//	-nocache        regenerate traces per run instead of replaying the
//	                shared materialization cache (for measuring the cache)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	unsync "github.com/cmlasu/unsync"
	"github.com/cmlasu/unsync/internal/benchkit"
)

// clockNow is the single injectable wall clock of the tool. It feeds
// the per-experiment progress timing printed to stderr and nothing
// else: simulation results depend only on simulated cycles, so this is
// the one audited wall-clock read in the module.
//
//unsync:allow-wallclock progress timing on stderr only; never feeds simulation state
var clockNow = time.Now

func main() {
	runList := flag.String("run", "all", "experiments: table1,table2,table3,fig4,fig5,fig6,ser,roec,coverage,campaign,ablations,extensions,replicated,all")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	quick := flag.Bool("quick", false, "scaled-down smoke configuration")
	workers := flag.Int("workers", 0, "parallel workers (0 = NumCPU)")
	trials := flag.Int("trials", 40, "functional injection trials per ROEC campaign")
	charts := flag.Bool("charts", false, "also draw text charts for the figures")
	eventsOut := flag.Bool("events", false, "run the hardware-counter event study: topdown decomposition and per-event counts/deltas across schemes (included in the -json report)")
	jsonOut := flag.Bool("json", false, "also run the benchkit kernels and write a BENCH.json report")
	benchOut := flag.String("benchout", "BENCH.json", "report path for -json")
	noCache := flag.Bool("nocache", false, "regenerate traces per run instead of replaying the shared cache")
	flag.Parse()

	opts := unsync.DefaultOptions()
	if *quick {
		opts = unsync.QuickOptions()
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *noCache {
		opts.RC.Source = nil // fall back to per-run generation
	}

	render := func(t *unsync.Table) {
		switch *format {
		case "csv":
			fmt.Print(t.CSV())
		case "markdown":
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.Text())
		}
		fmt.Println()
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	ran := 0

	var figTimes []benchkit.FigureTime
	step := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		start := clockNow()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "unsync-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := clockNow().Sub(start)
		figTimes = append(figTimes, benchkit.FigureTime{
			Name: name, WallMs: float64(wall.Nanoseconds()) / 1e6,
		})
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, wall.Round(time.Millisecond))
	}

	step("table1", func() error {
		render(unsync.TableI())
		return nil
	})
	step("table2", func() error {
		_, t := unsync.TableII()
		render(t)
		return nil
	})
	step("table3", func() error {
		_, t := unsync.TableIII()
		render(t)
		return nil
	})
	step("fig4", func() error {
		res, err := unsync.Fig4(opts)
		if err != nil {
			return err
		}
		render(res.Render())
		if *charts {
			fmt.Println(res.Chart())
		}
		return nil
	})
	step("fig5", func() error {
		res, err := unsync.Fig5(opts)
		if err != nil {
			return err
		}
		render(res.Render())
		if *charts {
			fmt.Println(res.Chart())
		}
		return nil
	})
	step("fig6", func() error {
		res, err := unsync.Fig6(opts)
		if err != nil {
			return err
		}
		render(res.Render())
		if *charts {
			fmt.Println(res.Chart())
		}
		return nil
	})
	step("ser", func() error {
		res, err := unsync.SERSweep(opts)
		if err != nil {
			return err
		}
		render(res.Render())
		return nil
	})
	step("roec", func() error {
		res, err := unsync.ROEC(*trials)
		if err != nil {
			return err
		}
		render(res.Render())
		return nil
	})
	step("coverage", func() error {
		u, r, err := unsync.CoverageStudy(*trials, opts.Workers)
		if err != nil {
			return err
		}
		render(unsync.RenderCoverage("unsync", u))
		render(unsync.RenderCoverage("reunion", r))
		return nil
	})
	step("extensions", func() error {
		red, err := unsync.RedundancyStudy(opts, "gzip", nil)
		if err != nil {
			return err
		}
		render(red.Render())
		inter, err := unsync.ChipInterference(opts, nil, 0)
		if err != nil {
			return err
		}
		render(unsync.RenderInterference(inter))
		avf, err := unsync.AVFEstimate(opts)
		if err != nil {
			return err
		}
		render(unsync.RenderAVF(avf))
		en, err := unsync.EnergyStudy(opts)
		if err != nil {
			return err
		}
		render(unsync.RenderEnergy(en))
		return nil
	})
	// "replicated" is opt-in only (it multiplies the Fig 4 cost by the
	// replica count), so it is excluded from -run all.
	if want["replicated"] {
		ran++
		start := clockNow()
		rows, err := unsync.ReplicatedFig4(opts, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-bench: replicated: %v\n", err)
			os.Exit(1)
		}
		render(unsync.RenderReplicated(rows))
		fmt.Fprintf(os.Stderr, "[replicated done in %v]\n\n", clockNow().Sub(start).Round(time.Millisecond))
	}

	var campaignBench *benchkit.CampaignBench
	step("campaign", func() error {
		cb, err := benchkit.CampaignStudy(*quick)
		if err != nil {
			return err
		}
		campaignBench = cb
		render(benchkit.RenderCampaign(cb))
		return nil
	})

	step("ablations", func() error {
		wp, err := unsync.AblationWritePolicy(opts)
		if err != nil {
			return err
		}
		render(unsync.RenderWritePolicy(wp))
		fw, err := unsync.AblationForwarding(opts)
		if err != nil {
			return err
		}
		render(unsync.RenderForwarding(fw))
		render(unsync.RenderDetection(unsync.AblationDetection()))
		return nil
	})

	var schemeEvents []benchkit.SchemeEvents
	if *eventsOut {
		ran++
		start := clockNow()
		evs, err := benchkit.EventStudy(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-bench: events: %v\n", err)
			os.Exit(1)
		}
		schemeEvents = evs
		render(benchkit.RenderTopdown(evs))
		render(benchkit.RenderEvents(evs))
		fmt.Fprintf(os.Stderr, "[events done in %v]\n\n", clockNow().Sub(start).Round(time.Millisecond))
	}

	if *jsonOut {
		ran++
		fmt.Fprintf(os.Stderr, "[benchkit kernels...]\n")
		start := clockNow()
		// The campaign section is mandatory in BENCH.json (CI validates
		// it), so run the study here if the step list skipped it.
		if campaignBench == nil {
			cb, err := benchkit.CampaignStudy(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "unsync-bench: campaign: %v\n", err)
				os.Exit(1)
			}
			campaignBench = cb
		}
		rep := benchkit.Report{
			Schema:   benchkit.Schema,
			Quick:    *quick,
			Kernels:  benchkit.RunAll(),
			Figures:  figTimes,
			Events:   schemeEvents,
			Campaign: campaignBench,
		}
		if err := rep.WriteFile(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "unsync-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[kernels done in %v; report written to %s]\n",
			clockNow().Sub(start).Round(time.Millisecond), *benchOut)
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unsync-bench: nothing selected by -run=%q\n", *runList)
		os.Exit(2)
	}
}
