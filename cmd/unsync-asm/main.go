// Command unsync-asm assembles and optionally executes programs written
// in the simulator's MIPS-like assembly (see internal/asm for the
// syntax).
//
// Usage:
//
//	unsync-asm -f prog.s            # assemble, print the listing
//	unsync-asm -f prog.s -run       # assemble and execute on the emulator
//	unsync-asm -f prog.s -run -trace # also print the commit trace
//	echo 'li r4, 7 ...' | unsync-asm -run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/trace"
)

func main() {
	file := flag.String("f", "-", "source file ('-' = stdin)")
	run := flag.Bool("run", false, "execute the program on the functional emulator")
	showTrace := flag.Bool("trace", false, "print the commit trace while executing")
	maxSteps := flag.Uint64("max-steps", 10_000_000, "execution step budget")
	flag.Parse()

	var src []byte
	var err error
	if *file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*file)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-asm: %v\n", err)
		os.Exit(1)
	}

	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "unsync-asm: %v\n", err)
		os.Exit(1)
	}

	// Listing: address, encoding, disassembly.
	fmt.Printf("; text: %d instructions (%d bytes), data: %d bytes at %#x\n",
		len(prog.Insts), prog.TextBytes(), len(prog.Data), prog.DataBase)
	labelAt := make(map[uint64][]string)
	for name, addr := range prog.Labels {
		labelAt[addr] = append(labelAt[addr], name)
	}
	for i, in := range prog.Insts {
		addr := uint64(4 * i)
		for _, l := range labelAt[addr] {
			fmt.Printf("%s:\n", l)
		}
		w, err := in.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-asm: encode %v: %v\n", in, err)
			os.Exit(1)
		}
		fmt.Printf("  %#06x  %016x  %s\n", addr, w, in)
	}

	if !*run {
		return
	}

	m := emu.New(prog)
	if *showTrace {
		m.OnCommit = func(c emu.Commit) {
			fmt.Println(" ", trace.FromCommit(c))
		}
	}
	if err := m.Run(*maxSteps); err != nil {
		fmt.Fprintf(os.Stderr, "unsync-asm: run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("; halted after %d instructions\n", m.InstCount)
	for i, v := range m.Output {
		fmt.Printf("output[%d] = %d (%#x)\n", i, v, v)
	}
}
