// Command unsync-asm assembles and optionally executes or verifies
// programs written in the simulator's MIPS-like assembly (see
// internal/asm for the syntax).
//
// Usage:
//
//	unsync-asm -f prog.s             # assemble, print the listing
//	unsync-asm -f prog.s -run        # assemble and execute on the emulator
//	unsync-asm -f prog.s -run -trace # also print the commit trace
//	unsync-asm -f prog.s -lint       # static checks (internal/asmlint)
//	unsync-asm -builtin all -lint    # verify every built-in workload
//	echo 'li r4, 7 ...' | unsync-asm -run
//
// -lint runs the static workload verifier: unreachable code,
// use-before-def register reads, missing HALT, provably out-of-range
// memory accesses and bad control-flow targets. Findings go to stderr
// and the exit status is 1 when any are reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/asmlint"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/progs"
	"github.com/cmlasu/unsync/internal/trace"
)

func main() {
	file := flag.String("f", "-", "source file ('-' = stdin)")
	builtin := flag.String("builtin", "", "use a built-in workload instead of -f: a name from internal/progs, or 'all'")
	run := flag.Bool("run", false, "execute the program on the functional emulator")
	lint := flag.Bool("lint", false, "run the static workload verifier; exit 1 on findings")
	showTrace := flag.Bool("trace", false, "print the commit trace while executing")
	maxSteps := flag.Uint64("max-steps", 10_000_000, "execution step budget")
	flag.Parse()

	type unit struct {
		name string
		src  string
	}
	var units []unit
	switch {
	case *builtin == "all":
		for _, p := range progs.All() {
			units = append(units, unit{p.Name, p.Source})
		}
	case *builtin != "":
		found := false
		for _, p := range progs.All() {
			if p.Name == *builtin {
				units = append(units, unit{p.Name, p.Source})
				found = true
				break
			}
		}
		if !found {
			var names []string
			for _, p := range progs.All() {
				names = append(names, p.Name)
			}
			fmt.Fprintf(os.Stderr, "unsync-asm: unknown builtin %q; have %v\n", *builtin, names)
			os.Exit(1)
		}
	default:
		var src []byte
		var err error
		if *file == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(*file)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-asm: %v\n", err)
			os.Exit(1)
		}
		units = append(units, unit{*file, string(src)})
	}

	findings := 0
	for _, u := range units {
		prog, err := asm.Assemble(u.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-asm: %s: %v\n", u.name, err)
			os.Exit(1)
		}

		if *lint {
			fs := asmlint.Lint(prog)
			findings += len(fs)
			for _, f := range fs {
				fmt.Fprintf(os.Stderr, "%s: %s\n", u.name, f)
			}
			if len(fs) == 0 {
				fmt.Printf("%s: ok (%d instructions)\n", u.name, len(prog.Insts))
			}
			continue
		}

		listing(prog)

		if !*run {
			continue
		}
		m := emu.New(prog)
		if *showTrace {
			m.OnCommit = func(c emu.Commit) {
				fmt.Println(" ", trace.FromCommit(c))
			}
		}
		if err := m.Run(*maxSteps); err != nil {
			fmt.Fprintf(os.Stderr, "unsync-asm: run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("; halted after %d instructions\n", m.InstCount)
		for i, v := range m.Output {
			fmt.Printf("output[%d] = %d (%#x)\n", i, v, v)
		}
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// listing prints address, encoding and disassembly for the program.
func listing(prog *asm.Program) {
	fmt.Printf("; text: %d instructions (%d bytes), data: %d bytes at %#x\n",
		len(prog.Insts), prog.TextBytes(), len(prog.Data), prog.DataBase)
	labelAt := make(map[uint64][]string)
	for name, addr := range prog.Labels {
		labelAt[addr] = append(labelAt[addr], name)
	}
	for i, in := range prog.Insts {
		addr := uint64(4 * i)
		names := labelAt[addr]
		sort.Strings(names)
		for _, l := range names {
			fmt.Printf("%s:\n", l)
		}
		w, err := in.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "unsync-asm: encode %v: %v\n", in, err)
			os.Exit(1)
		}
		fmt.Printf("  %#06x  %016x  %s\n", addr, w, in)
	}
}
