package unsync

import (
	"context"

	"github.com/cmlasu/unsync/internal/dies"
	"github.com/cmlasu/unsync/internal/experiments"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/sweep"
)

// This file re-exports the experiment drivers: one entry point per
// table and figure of the paper's evaluation section.

// Options configures a whole experiment run (machine configuration,
// benchmark set, worker parallelism).
type Options = experiments.Options

// Table is a rendered result table (Text/CSV/Markdown methods).
type Table = report.Table

// DefaultOptions returns the full-fidelity experiment configuration.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions returns a scaled-down configuration for smoke runs.
func QuickOptions() Options { return experiments.QuickOptions() }

// TableI renders the simulated baseline CMP parameters (paper Table I).
func TableI() *Table { return experiments.TableI() }

// TableIIResult carries the synthesis-model outputs and headline deltas.
type TableIIResult = experiments.TableIIResult

// TableII computes the hardware overhead comparison (paper Table II).
func TableII() (TableIIResult, *Table) { return experiments.TableII() }

// DieProjection is one row of the Table III many-core projection.
type DieProjection = dies.Projection

// TableIII projects many-core die sizes under both schemes (paper
// Table III).
func TableIII() ([]DieProjection, *Table) { return experiments.TableIII() }

// Fig4Result is the serializing-instruction overhead study.
type Fig4Result = experiments.Fig4Result

// Fig4 measures per-benchmark overheads of UnSync and Reunion over the
// baseline (paper Figure 4).
func Fig4(o Options) (Fig4Result, error) { return experiments.Fig4(context.Background(), o) }

// Fig4Context is Fig4 under a context: cancelling ctx abandons the
// study within one run quantum and returns the partial-result error
// contract of the sweep layer.
func Fig4Context(ctx context.Context, o Options) (Fig4Result, error) {
	return experiments.Fig4(ctx, o)
}

// Fig5Result is the Reunion FI/latency sensitivity sweep.
type Fig5Result = experiments.Fig5Result

// Fig5 sweeps Reunion's fingerprint interval and comparison latency
// (paper Figure 5). Passing nil benches/points selects the paper's
// defaults.
func Fig5(o Options) (Fig5Result, error) {
	return experiments.Fig5(context.Background(), o, nil, nil)
}

// Fig5Context is Fig5 under a context.
func Fig5Context(ctx context.Context, o Options) (Fig5Result, error) {
	return experiments.Fig5(ctx, o, nil, nil)
}

// Fig6Result is the Communication Buffer sizing sweep.
type Fig6Result = experiments.Fig6Result

// Fig6 sweeps the UnSync Communication Buffer size (paper Figure 6).
func Fig6(o Options) (Fig6Result, error) {
	return experiments.Fig6(context.Background(), o, nil, nil)
}

// Fig6Context is Fig6 under a context.
func Fig6Context(ctx context.Context, o Options) (Fig6Result, error) {
	return experiments.Fig6(ctx, o, nil, nil)
}

// SERResult is the soft-error-rate study (§VI-C).
type SERResult = experiments.SERResult

// SERSweep computes effective IPC across soft-error rates, validates
// it with injected-error timing runs, and solves for the break-even
// SER (paper §VI-C).
func SERSweep(o Options) (SERResult, error) {
	return experiments.SERSweep(context.Background(), o)
}

// SERSweepContext is SERSweep under a context.
func SERSweepContext(ctx context.Context, o Options) (SERResult, error) {
	return experiments.SERSweep(ctx, o)
}

// ROECResult is the region-of-error-coverage study (§VI-D).
type ROECResult = experiments.ROECResult

// ROEC runs the coverage comparison and the functional fault-injection
// campaigns (paper §VI-D).
func ROEC(trials int) (ROECResult, error) { return experiments.ROEC(context.Background(), trials) }

// ROECContext is ROEC under a context.
func ROECContext(ctx context.Context, trials int) (ROECResult, error) {
	return experiments.ROEC(ctx, trials)
}

// CoverageRow is one fault space's campaign outcome under a scheme.
type CoverageRow = experiments.CoverageRow

// CoverageStudy runs one coverage-driven campaign per fault space for
// both schemes (UnSync rows, Reunion rows) — the campaign-engine
// extension of the §VI-D study, with per-space SDC Wilson intervals.
func CoverageStudy(trials, workers int) ([]CoverageRow, []CoverageRow, error) {
	return experiments.CoverageStudy(context.Background(), trials, workers)
}

// CoverageStudyContext is CoverageStudy under a context: cancellation
// degrades each in-flight campaign to a resumable partial result.
func CoverageStudyContext(ctx context.Context, trials, workers int) ([]CoverageRow, []CoverageRow, error) {
	return experiments.CoverageStudy(ctx, trials, workers)
}

// RenderCoverage renders a scheme's per-space campaign table.
func RenderCoverage(scheme string, rows []CoverageRow) *Table {
	return experiments.RenderCoverage(scheme, rows)
}

// HardwareTableII exposes the raw synthesis model (block inventories,
// CACTI-lite cache model) for custom what-if studies.
func HardwareTableII(p hwmodel.Params) hwmodel.TableII { return hwmodel.Compute(p) }

// HardwareParams returns the paper's synthesis operating point.
func HardwareParams() hwmodel.Params { return hwmodel.DefaultParams() }

// ManyCoreCatalog returns the Table III processor datasheet entries.
func ManyCoreCatalog() []dies.ManyCore { return dies.Catalog() }

// FI5Points returns the paper's Figure 5 sweep axis.
func FI5Points() []sweep.Pair[int, uint64] { return experiments.DefaultFig5Points() }

// Ablation studies (design choices the paper argues for, quantified).
type (
	// WritePolicyRow is the §III-C1 write-through-requirement ablation.
	WritePolicyRow = experiments.WritePolicyRow
	// ForwardingRow is the §IV-A4 CSB register-forwarding ablation.
	ForwardingRow = experiments.ForwardingRow
	// DetectionRow is the §III-B1 detection-choice ablation.
	DetectionRow = experiments.DetectionRow
)

// AblationWritePolicy quantifies the write-back dirty-line exposure
// UnSync's write-through requirement eliminates (§III-C1).
func AblationWritePolicy(o Options) ([]WritePolicyRow, error) {
	return experiments.AblationWritePolicy(context.Background(), o)
}

// AblationForwarding quantifies Reunion without CSB register
// forwarding (§IV-A4).
func AblationForwarding(o Options) ([]ForwardingRow, error) {
	return experiments.AblationForwarding(context.Background(), o)
}

// AblationDetection compares detection-technique assignments for the
// UnSync core (§III-B1).
func AblationDetection() []DetectionRow { return experiments.AblationDetection() }

// RenderWritePolicy, RenderForwarding and RenderDetection render the
// ablation tables.
func RenderWritePolicy(rows []WritePolicyRow) *Table { return experiments.RenderWritePolicy(rows) }

// RenderForwarding renders the forwarding ablation.
func RenderForwarding(rows []ForwardingRow) *Table { return experiments.RenderForwarding(rows) }

// RenderDetection renders the detection ablation.
func RenderDetection(rows []DetectionRow) *Table { return experiments.RenderDetection(rows) }

// Extension studies beyond the paper's evaluation.
type (
	// RedundancyResult is the §VIII DMR-vs-TMR trade-off study.
	RedundancyResult = experiments.RedundancyResult
	// InterferenceRow is one chip-level co-scheduling measurement.
	InterferenceRow = experiments.InterferenceRow
)

// RedundancyStudy compares the UnSync DMR pair against the TMR triple
// extension (§VIII) across error rates. nil rates selects defaults.
func RedundancyStudy(o Options, benchmark string, rates []float64) (RedundancyResult, error) {
	return experiments.RedundancyStudy(context.Background(), o, benchmark, rates)
}

// ChipInterference measures co-scheduling slowdowns on the 4-core chip
// (two UnSync pairs sharing L2 and bus). nil pairs selects defaults.
func ChipInterference(o Options, pairs [][2]string, insts uint64) ([]InterferenceRow, error) {
	return experiments.ChipInterference(context.Background(), o, pairs, insts)
}

// RenderInterference renders the chip study.
func RenderInterference(rows []InterferenceRow) *Table { return experiments.RenderInterference(rows) }

// AVFRow is one benchmark's residency-weighted vulnerability estimate.
type AVFRow = experiments.AVFRow

// AVFEstimate weights the §VI-D structural bit counts by measured
// occupancy and reports each scheme's residual exposure.
func AVFEstimate(o Options) ([]AVFRow, error) {
	return experiments.AVFEstimate(context.Background(), o)
}

// RenderAVF renders the vulnerability estimate.
func RenderAVF(rows []AVFRow) *Table { return experiments.RenderAVF(rows) }

// ReplicatedRow is one benchmark's overhead measured across reseeded
// workload replicas (mean ± std).
type ReplicatedRow = experiments.ReplicatedRow

// ReplicatedFig4 repeats the Figure 4 measurement across n reseeded
// instances of every workload, separating architecture signal from
// generator noise.
func ReplicatedFig4(o Options, replicas int) ([]ReplicatedRow, error) {
	return experiments.ReplicatedFig4(context.Background(), o, replicas)
}

// RenderReplicated renders the replicated measurement.
func RenderReplicated(rows []ReplicatedRow) *Table { return experiments.RenderReplicated(rows) }

// EnergyRow is one benchmark's energy-per-instruction comparison.
type EnergyRow = experiments.EnergyRow

// EnergyStudy joins the Table II power model with measured throughput:
// nanojoules per architecturally useful instruction, per scheme.
func EnergyStudy(o Options) ([]EnergyRow, error) {
	return experiments.EnergyStudy(context.Background(), o)
}

// RenderEnergy renders the energy study.
func RenderEnergy(rows []EnergyRow) *Table { return experiments.RenderEnergy(rows) }
