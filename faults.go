package unsync

import (
	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/fault"
)

// This file re-exports the functional layer (assembler, emulator) and
// the fault-injection campaigns, so downstream users can run real
// programs on the redundant schemes and verify recovery end to end.

// Program is an assembled program (text + data sections).
type Program = asm.Program

// Machine is the functional emulator state for one core.
type Machine = emu.Machine

// Assemble assembles ISA source text (see internal/asm for the syntax).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// NewMachine loads a program into a fresh functional core.
func NewMachine(p *Program) *Machine { return emu.New(p) }

// SER is a soft-error-rate model: errors per committed instruction,
// driving the Poisson arrival process of injected runs (RunWithFaults).
type SER = fault.SER

// Fault-injection surface.
type (
	// Flip is one single-bit architectural upset.
	Flip = fault.Flip
	// Outcome classifies an injection trial (benign / recovered /
	// unrecoverable / silent corruption).
	Outcome = fault.Outcome
	// CampaignResult tallies injection outcomes.
	CampaignResult = fault.CampaignResult
	// Coverage maps structures to their detection mechanism.
	Coverage = fault.Coverage
)

// Injection spaces and outcomes.
const (
	SpaceIntReg = fault.SpaceIntReg
	SpaceFPReg  = fault.SpaceFPReg
	SpacePC     = fault.SpacePC

	OutcomeBenign        = fault.OutcomeBenign
	OutcomeRecovered     = fault.OutcomeRecovered
	OutcomeUnrecoverable = fault.OutcomeUnrecoverable
	OutcomeSDC           = fault.OutcomeSDC
)

// UnSyncFaultTrial injects one upset into an UnSync pair running the
// program and reports the outcome (§VI-D semantics: local detection,
// copy-from-partner recovery, always-forward execution).
func UnSyncFaultTrial(p *Program, step uint64, f Flip, detected bool, maxSteps uint64) (Outcome, error) {
	return fault.UnSyncTrial(p, step, f, detected, maxSteps)
}

// ReunionFaultTrial injects one upset into a Reunion pair (fingerprint
// detection, rollback recovery). transient selects an in-flight upset
// (inside Reunion's ROEC) versus a persistent register-cell upset
// (outside it).
func ReunionFaultTrial(p *Program, step uint64, f Flip, transient bool, fi int, maxSteps uint64) (Outcome, error) {
	return fault.ReunionTrial(p, step, f, transient, fi, maxSteps)
}

// UnSyncFaultCampaign runs n deterministic UnSync injections.
func UnSyncFaultCampaign(p *Program, n int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return fault.UnSyncCampaign(p, n, seed, maxSteps)
}

// ReunionFaultCampaign runs n deterministic Reunion injections.
func ReunionFaultCampaign(p *Program, n int, transient bool, fi int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return fault.ReunionCampaign(p, n, transient, fi, seed, maxSteps)
}

// UnSyncCoverage returns UnSync's detection assignment (parity on
// storage, DMR on per-cycle sequential elements).
func UnSyncCoverage() Coverage { return fault.UnSyncCoverage() }

// ReunionCoverage returns Reunion's region of error coverage
// (pre-commit pipeline state only).
func ReunionCoverage() Coverage { return fault.ReunionCoverage() }

// BreakEvenSER solves for the error rate at which two schemes'
// throughput curves cross (§VI-C's hypothetical analysis).
func BreakEvenSER(ipc1, costPerError1, ipc2, costPerError2 float64) float64 {
	return fault.BreakEven(ipc1, costPerError1, ipc2, costPerError2)
}
