package unsync

import (
	"context"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/fault"
)

// This file re-exports the functional layer (assembler, emulator) and
// the fault-injection campaigns, so downstream users can run real
// programs on the redundant schemes and verify recovery end to end.

// Program is an assembled program (text + data sections).
type Program = asm.Program

// Machine is the functional emulator state for one core.
type Machine = emu.Machine

// Assemble assembles ISA source text (see internal/asm for the syntax).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// NewMachine loads a program into a fresh functional core.
func NewMachine(p *Program) *Machine { return emu.New(p) }

// SER is a soft-error-rate model: errors per committed instruction,
// driving the Poisson arrival process of injected runs (RunWithFaults).
type SER = fault.SER

// Fault-injection surface.
type (
	// Flip is one single-bit architectural upset.
	Flip = fault.Flip
	// Outcome classifies an injection trial (benign / recovered /
	// unrecoverable / silent corruption).
	Outcome = fault.Outcome
	// CampaignResult tallies injection outcomes.
	CampaignResult = fault.CampaignResult
	// Coverage maps structures to their detection mechanism.
	Coverage = fault.Coverage
)

// Injection spaces and outcomes.
const (
	SpaceIntReg = fault.SpaceIntReg
	SpaceFPReg  = fault.SpaceFPReg
	SpacePC     = fault.SpacePC
	SpaceMem    = fault.SpaceMem
	SpaceCB     = fault.SpaceCB

	OutcomeBenign        = fault.OutcomeBenign
	OutcomeRecovered     = fault.OutcomeRecovered
	OutcomeUnrecoverable = fault.OutcomeUnrecoverable
	OutcomeSDC           = fault.OutcomeSDC
	OutcomeHang          = fault.OutcomeHang
)

// ErrInvalidFlip is returned (wrapped) when a Flip fails validation —
// out-of-range register, the hardwired r0, or an out-of-range bit.
var ErrInvalidFlip = fault.ErrInvalidFlip

// UnSyncFaultTrial injects one upset into an UnSync pair running the
// program and reports the outcome (§VI-D semantics: local detection,
// copy-from-partner recovery, always-forward execution).
func UnSyncFaultTrial(p *Program, step uint64, f Flip, detected bool, maxSteps uint64) (Outcome, error) {
	return fault.UnSyncTrial(p, step, f, detected, maxSteps)
}

// ReunionFaultTrial injects one upset into a Reunion pair (fingerprint
// detection, rollback recovery). transient selects an in-flight upset
// (inside Reunion's ROEC) versus a persistent register-cell upset
// (outside it).
func ReunionFaultTrial(p *Program, step uint64, f Flip, transient bool, fi int, maxSteps uint64) (Outcome, error) {
	return fault.ReunionTrial(p, step, f, transient, fi, maxSteps)
}

// UnSyncFaultCampaign runs n deterministic UnSync injections.
func UnSyncFaultCampaign(p *Program, n int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return fault.UnSyncCampaign(p, n, seed, maxSteps)
}

// ReunionFaultCampaign runs n deterministic Reunion injections.
func ReunionFaultCampaign(p *Program, n int, transient bool, fi int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return fault.ReunionCampaign(p, n, transient, fi, seed, maxSteps)
}

// Campaign-engine surface (internal/campaign): resilient, parallel,
// checkpointed injection campaigns with coverage-driven detection.
type (
	// CampaignConfig configures a resilient injection campaign: scheme,
	// trial count, seed, fault spaces, coverage map, worker pool, step
	// budget, JSONL checkpoint/resume and Wilson early stopping.
	CampaignConfig = campaign.Spec
	// CampaignOutcome is the aggregated campaign result: per-outcome
	// tallies overall and per space, plus the SDC rate with its Wilson
	// confidence interval.
	CampaignOutcome = campaign.Result
)

// CampaignConfig.Scheme takes the plain scheme name — "unsync" or
// "reunion", i.e. string(SchemeUnSync) / string(SchemeReunion).

// ErrCampaignInterrupted reports a campaign stopped by
// CampaignConfig.StopAfter; the partial result is still returned.
var ErrCampaignInterrupted = campaign.ErrInterrupted

// RunCampaign runs a resilient fault-injection campaign: trials execute
// on a worker pool with per-trial step-budget watchdogs and panic
// isolation, detection is resolved per trial from the coverage map,
// completed trials are journaled to the checkpoint for deterministic
// resume, and a partial result is always returned alongside joined
// per-trial errors.
func RunCampaign(p *Program, cfg CampaignConfig) (CampaignOutcome, error) {
	return campaign.Run(p, cfg)
}

// RunCampaignContext is RunCampaign under a context: cancelling ctx
// stops scheduling new trials within one trial quantum, flushes every
// completed trial to the checkpoint journal, and returns the partial
// result with ErrCampaignInterrupted (and the cancellation cause)
// joined into the error — a later run with the same CampaignConfig
// resumes from the journal bit-identically.
func RunCampaignContext(ctx context.Context, p *Program, cfg CampaignConfig) (CampaignOutcome, error) {
	return campaign.RunContext(ctx, p, cfg)
}

// UnSyncCoverage returns UnSync's detection assignment (parity on
// storage, DMR on per-cycle sequential elements).
func UnSyncCoverage() Coverage { return fault.UnSyncCoverage() }

// ReunionCoverage returns Reunion's region of error coverage
// (pre-commit pipeline state only).
func ReunionCoverage() Coverage { return fault.ReunionCoverage() }

// BreakEvenSER solves for the error rate at which two schemes'
// throughput curves cross (§VI-C's hypothetical analysis).
func BreakEvenSER(ipc1, costPerError1, ipc2, costPerError2 float64) float64 {
	return fault.BreakEven(ipc1, costPerError1, ipc2, costPerError2)
}
