// Package unsync is a library-level reproduction of "UnSync: A Soft
// Error Resilient Redundant Multicore Architecture" (Jeyapaul,
// Hong, Rhisheekesan, Shrivastava, Lee — ICPP 2011).
//
// It bundles:
//
//   - a cycle-accurate out-of-order CMP timing model (Table I machine);
//   - the UnSync redundant core-pair architecture (Communication
//     Buffer, EIH, parity/DMR detection, always-forward recovery);
//   - the Reunion comparison baseline (CRC-16 fingerprints, CHECK Stage
//     Buffer, serializing-instruction synchronization, rollback);
//   - synthetic SPEC2000/MiBench workload profiles and a functional
//     MIPS-like emulator with an assembler;
//   - a synthesis-calibrated hardware area/power model (Tables II/III);
//   - fault-injection campaigns and region-of-error-coverage analysis;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	cfg := unsync.DefaultRunConfig()
//	base, _ := unsync.Run(unsync.SchemeBaseline, cfg, "bzip2")
//	us, _ := unsync.Run(unsync.SchemeUnSync, cfg, "bzip2")
//	re, _ := unsync.Run(unsync.SchemeReunion, cfg, "bzip2")
//	tm, _ := unsync.Run(unsync.SchemeTMR, cfg, "bzip2")
//	fmt.Printf("IPC: baseline %.2f, unsync %.2f, reunion %.2f, tmr %.2f\n",
//		base.IPC, us.IPC, re.IPC, tm.IPC)
//
// The experiment drivers live behind Fig4, Fig5, Fig6, SERSweep, ROEC,
// TableI, TableII and TableIII; the cmd/unsync-bench tool runs them all.
package unsync

import (
	"context"
	"fmt"

	"github.com/cmlasu/unsync/internal/cmp"
	unsynccore "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/tmr"
	"github.com/cmlasu/unsync/internal/trace"
)

// Scheme names an architecture in the scheme registry: SchemeBaseline,
// SchemeUnSync, SchemeReunion, SchemeTMR, or any name registered by an
// extension. Schemes() lists what is runnable.
type Scheme = cmp.Scheme

// Architecture schemes.
const (
	SchemeBaseline = cmp.Baseline
	SchemeUnSync   = cmp.UnSync
	SchemeReunion  = cmp.Reunion
	SchemeTMR      = cmp.TMR
)

// Schemes returns every registered scheme name, sorted.
func Schemes() []Scheme { return cmp.Schemes() }

// FaultPlan configures the Poisson soft-error process of an injected
// run (see RunWithFaults). The zero value injects nothing.
type FaultPlan = cmp.FaultPlan

// RunConfig bundles every knob of a simulation run: the core pipeline,
// the memory hierarchy, the two schemes' parameters, and the
// warmup/measurement windows.
type RunConfig = cmp.RunConfig

// Result is the outcome of one simulation run.
type Result = cmp.Result

// CoreConfig configures the out-of-order core (Table I defaults via
// DefaultCoreConfig).
type CoreConfig = pipeline.Config

// MemConfig configures the cache hierarchy (Table I defaults via
// DefaultMemConfig).
type MemConfig = mem.Config

// UnSyncConfig holds the UnSync-specific parameters (Communication
// Buffer geometry and the recovery cost model).
type UnSyncConfig = unsynccore.Config

// ReunionConfig holds the Reunion parameters (fingerprint interval,
// comparison latency, CHECK Stage Buffer size).
type ReunionConfig = reunion.Config

// Profile describes a synthetic benchmark workload.
type Profile = trace.Profile

// UnSyncPair is a live UnSync redundant core-pair for custom
// simulations (see NewUnSyncPair).
type UnSyncPair = unsynccore.Pair

// ReunionPair is a live Reunion redundant core-pair.
type ReunionPair = reunion.Pair

// DefaultRunConfig returns the paper's operating point: the Table I
// machine, FI=10 Reunion fingerprints, a 2 KB Communication Buffer, a
// 50k-instruction warmup and a 200k-instruction measurement window.
func DefaultRunConfig() RunConfig { return cmp.DefaultRunConfig() }

// DefaultCoreConfig returns the Table I core.
func DefaultCoreConfig() CoreConfig { return pipeline.DefaultConfig() }

// DefaultMemConfig returns the Table I memory hierarchy.
func DefaultMemConfig() MemConfig { return mem.DefaultConfig() }

// Benchmarks returns all bundled workload profiles (12 SPEC2000 +
// 8 MiBench), sorted by suite and name.
func Benchmarks() []Profile { return trace.Benchmarks() }

// BenchmarkByName returns the named workload profile.
func BenchmarkByName(name string) (Profile, bool) { return trace.ByName(name) }

// Run executes the named benchmark on the selected scheme and returns
// the measurement-window result.
func Run(s Scheme, rc RunConfig, benchmark string) (Result, error) {
	return RunContext(context.Background(), s, rc, benchmark)
}

// RunContext is Run under a context: cancelling ctx abandons the
// simulation within one step quantum (a few thousand machine cycles)
// and returns the cancellation cause instead of a result.
func RunContext(ctx context.Context, s Scheme, rc RunConfig, benchmark string) (Result, error) {
	p, ok := trace.ByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("unsync: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	return cmp.RunContext(ctx, s, rc, p)
}

// RunProfile executes a custom workload profile on the selected scheme.
func RunProfile(s Scheme, rc RunConfig, p Profile) (Result, error) {
	return cmp.Run(s, rc, p)
}

// RunProfileContext is RunProfile under a context (see RunContext).
func RunProfileContext(ctx context.Context, s Scheme, rc RunConfig, p Profile) (Result, error) {
	return cmp.RunContext(ctx, s, rc, p)
}

// RunWithFaults executes the named benchmark on the selected scheme
// under a Poisson soft-error process: each arrival strikes a random
// replica and exercises the scheme's own detection and recovery
// mechanism (UnSync stalls the pair for an EIH recovery, Reunion rolls
// back a fingerprint window, TMR resynchronizes the struck core under
// quorum masking). The unprotected baseline rejects injected runs.
func RunWithFaults(s Scheme, rc RunConfig, benchmark string, plan FaultPlan) (Result, error) {
	return RunWithFaultsContext(context.Background(), s, rc, benchmark, plan)
}

// RunWithFaultsContext is RunWithFaults under a context (see
// RunContext for the cancellation contract).
func RunWithFaultsContext(ctx context.Context, s Scheme, rc RunConfig, benchmark string, plan FaultPlan) (Result, error) {
	p, ok := trace.ByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("unsync: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	return cmp.RunInjectedContext(ctx, s, rc, p, plan)
}

// Overhead returns the percentage slowdown of res relative to base.
func Overhead(base, res Result) float64 { return cmp.Overhead(base, res) }

// NewUnSyncPair builds a live UnSync core-pair running the given
// benchmark for at most n instructions, for custom cycle-by-cycle
// studies (fault scheduling, occupancy probes). Both cores replay the
// identical instruction stream.
func NewUnSyncPair(rc RunConfig, benchmark string, n uint64) (*UnSyncPair, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	p, ok := trace.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("unsync: unknown benchmark %q", benchmark)
	}
	return unsynccore.NewPair(rc.Core, rc.Mem, rc.UnSync,
		trace.NewLimit(trace.NewGenerator(p), n),
		trace.NewLimit(trace.NewGenerator(p), n)), nil
}

// NewReunionPair builds a live Reunion core-pair running the given
// benchmark for at most n instructions.
func NewReunionPair(rc RunConfig, benchmark string, n uint64) (*ReunionPair, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	p, ok := trace.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("unsync: unknown benchmark %q", benchmark)
	}
	return reunion.NewPair(rc.Core, rc.Mem, rc.Reunion,
		trace.NewLimit(trace.NewGenerator(p), n),
		trace.NewLimit(trace.NewGenerator(p), n)), nil
}

// TMRTriple is a live triple-modular-redundant core-triple (the §VIII
// future-work extension: majority voting masks errors without stalling
// the quorum).
type TMRTriple = tmr.Triple

// TMRConfig holds the triple's parameters.
type TMRConfig = tmr.Config

// DefaultTMRConfig returns the triple's default design point.
func DefaultTMRConfig() TMRConfig { return tmr.DefaultConfig() }

// NewTMRTriple builds a live TMR triple running the given benchmark for
// at most n instructions.
func NewTMRTriple(rc RunConfig, cfg TMRConfig, benchmark string, n uint64) (*TMRTriple, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, ok := trace.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("unsync: unknown benchmark %q", benchmark)
	}
	var streams [3]trace.Stream
	for i := range streams {
		streams[i] = trace.NewLimit(trace.NewGenerator(p), n)
	}
	return tmr.NewTriple(rc.Core, rc.Mem, cfg, streams), nil
}

// Stream is a source of dynamic instructions for custom chips.
type Stream = trace.Stream

// StreamFactory produces fresh streams; a pair consumes two identical
// ones.
type StreamFactory = cmp.StreamFactory

// Chip is a full CMP: redundant pairs and optional unprotected solo
// cores sharing the L2 and L1↔L2 bus.
type Chip = cmp.Chip

// BenchmarkStream returns a StreamFactory for the named workload,
// truncated to n instructions.
func BenchmarkStream(benchmark string, n uint64) (StreamFactory, error) {
	p, ok := trace.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("unsync: unknown benchmark %q", benchmark)
	}
	return func() Stream { return trace.NewLimit(trace.NewGenerator(p), n) }, nil
}

// NewChip builds a chip with one redundant pair per workload (the
// Table I machine is two UnSync pairs).
func NewChip(s Scheme, rc RunConfig, pairs []StreamFactory) (*Chip, error) {
	return cmp.NewChip(s, rc, pairs)
}

// NewMixedChip builds a chip mixing redundant pairs with unprotected
// solo cores — the §I configurability of reliability vs throughput.
func NewMixedChip(s Scheme, rc RunConfig, pairs, solos []StreamFactory) (*Chip, error) {
	return cmp.NewMixedChip(s, rc, pairs, solos)
}
